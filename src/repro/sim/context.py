"""Context-switch cost model (paper section 8.1, experiment E10).

"Updating the ASID registers is cheap, so the high available memory
bandwidth in the system permits a complete context switch in 15
microseconds.  This figure holds in any machine configuration, because
usable memory bandwidth increases as the number of registers."

The model decomposes a switch into: interrupt entry and pipeline drain,
saving and restoring every register file over the store/load buses (one
32-bit word per bus per beat), scheduler overhead, and — for the untagged
comparison — the cold-start cost of a flushed TLB and instruction cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine import MachineConfig

#: interrupt entry + self-draining pipeline wait (max pipeline depth ~25
#: beats for a divide) + trap dispatch
INTERRUPT_DRAIN_BEATS = 40
#: scheduler bookkeeping in the kernel, in beats
SCHEDULER_BEATS = 30
#: modeled cold-start penalty after a full cache+TLB flush, in beats
#: (Clark & Emer-style translation-buffer cold misses; paper citation)
FLUSH_COLD_START_BEATS = 3000
#: hardware ASID space: 8 bits -> purge every 255 mapping changes
ASID_COUNT = 255


@dataclass
class ContextSwitchReport:
    """Cost breakdown of one context switch."""

    config_pairs: int
    register_words: int
    save_restore_beats: int
    overhead_beats: int
    cold_start_beats: int

    @property
    def total_beats(self) -> int:
        return (self.save_restore_beats + self.overhead_beats
                + self.cold_start_beats)

    def total_us(self, config: MachineConfig) -> float:
        return self.total_beats * config.beat_ns * 1e-3


def register_file_words(config: MachineConfig) -> int:
    """32-bit words of architectural state per process.

    Per pair: 64 integer registers, 64 32-bit float registers (32 x 64-bit),
    a 32-word store file, and the branch banks + PSW (counted as 4 words).
    """
    per_pair = 64 + 64 + 32 + 4
    return per_pair * config.n_pairs


def context_switch_cost(config: MachineConfig,
                        tagged: bool = True) -> ContextSwitchReport:
    """Beats to switch between two resident processes.

    With ASID tagging (the real machine) no cache or TLB purge happens;
    untagged hardware pays a flush plus cold-start misses.
    """
    words = register_file_words(config)
    # save + restore as paired 64-bit references (2 words per bus-beat);
    # store buses carry the save while load buses carry the next process's
    # restore, so bandwidth scales with configuration exactly as the paper
    # says ("usable memory bandwidth increases as the number of registers")
    words_per_beat = 2 * config.n_store_buses
    save_restore = 2 * ((words + words_per_beat - 1) // words_per_beat)
    overhead = INTERRUPT_DRAIN_BEATS + SCHEDULER_BEATS
    cold = 0 if tagged else FLUSH_COLD_START_BEATS
    return ContextSwitchReport(config.n_pairs, words, save_restore,
                               overhead, cold)


def asid_purge_interval() -> int:
    """Mapping changes between unavoidable purges (ASID space wrap)."""
    return ASID_COUNT


class ProcessTagTable:
    """Hardware ASID allocator: maps software process ids to the 8-bit
    process tags that key the TLB and instruction cache.

    The real machine has :data:`ASID_COUNT` tags; while a process keeps
    its tag, a context switch back to it costs no flush.  When every tag
    is in use, the least-recently-assigned process is evicted (its next
    switch-in pays cold-start misses), and a full purge resets the table
    exactly as an ASID-space wrap would.
    """

    def __init__(self, capacity: int = ASID_COUNT) -> None:
        if capacity < 1:
            raise ValueError("ProcessTagTable needs at least one tag")
        self.capacity = capacity
        self._tags: dict[object, int] = {}      # pid -> asid
        self._stamp: dict[object, int] = {}     # pid -> last-use clock
        self._clock = 0
        self.assignments = 0
        self.hits = 0
        self.evictions = 0
        self.purges = 0

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, pid) -> bool:
        return pid in self._tags

    def assign(self, pid) -> int:
        """The pid's tag, allocating (and evicting if needed) on a miss."""
        self._clock += 1
        self.assignments += 1
        if pid in self._tags:
            self.hits += 1
            self._stamp[pid] = self._clock
            return self._tags[pid]
        if len(self._tags) >= self.capacity:
            victim = min(self._stamp, key=self._stamp.get)
            asid = self._tags.pop(victim)
            del self._stamp[victim]
            self.evictions += 1
        else:
            used = set(self._tags.values())
            asid = next(a for a in range(self.capacity) if a not in used)
        self._tags[pid] = asid
        self._stamp[pid] = self._clock
        return asid

    def release(self, pid) -> None:
        """Free a pid's tag (process exit)."""
        self._tags.pop(pid, None)
        self._stamp.pop(pid, None)

    def purge(self) -> None:
        """Drop every mapping (ASID-space wrap)."""
        self._tags.clear()
        self._stamp.clear()
        self.purges += 1
