"""Scoreboard baseline: dynamic-issue hardware limited to basic blocks.

The paper cites Acosta et al.: execute-unit schedulers that "look ahead in
a conventional instruction stream and attempt to dynamically overlap
execution" achieve "only a factor of 2 or 3 speedup ... the hardware cannot
see past basic blocks in order to find usable concurrency."

This simulator models such a machine generously: the *same* functional-unit
complement and latencies as the TRACE configuration it is compared with,
out-of-order issue *within* the current basic block (every operation starts
at its earliest hazard-free cycle), out-of-order completion with a register
scoreboard (CDC-6600-style WAW/WAR stalls, no renaming), and *perfect*
runtime memory disambiguation (it sees real addresses).  Its one structural
limit is the paper's: issue never crosses a basic-block boundary
speculatively — a branch ends the lookahead window, and the next block
starts only after the branch resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimError, TrapError
from ..faults import CHECKPOINT, FP_TRAP, INTERRUPT
from ..ir import (ACCESS_SIZE, Category, Function, Imm, MemoryImage, Module,
                  Opcode, Operation, RegClass, Symbol, VReg, wrap32)
from ..ir.interp import FUNNY_FLOAT, FUNNY_INT, Interpreter
from ..machine import MachineConfig
from ..machine.resources import latency_table
from ..obs import get_tracer

#: functional-unit kind per op category
_FU_KIND = {
    Category.INT_ALU: "int", Category.INT_CMP: "int", Category.PRED: "int",
    Category.INT_MUL: "int", Category.INT_DIV: "int",
    Category.FLT_ADD: "fadd", Category.FLT_CMP: "fadd", Category.CVT: "fadd",
    Category.FLT_MUL: "fmul", Category.FLT_DIV: "fmul",
    Category.LOAD: "mem", Category.STORE: "mem",
}


@dataclass
class ScoreboardStats:
    """Cycle and event counters from a scoreboard run."""

    cycles: int = 0
    ops: int = 0
    loads: int = 0
    stores: int = 0
    calls: int = 0
    issue_stalls: int = 0
    interrupts: int = 0

    @property
    def beats(self) -> int:
        return 2 * self.cycles

    def time_us(self, config: MachineConfig) -> float:
        return self.beats * config.beat_ns * 1e-3


@dataclass
class ScoreboardResult:
    value: object
    memory: MemoryImage
    stats: ScoreboardStats


class ScoreboardSimulator:
    """In-order multi-issue, out-of-order completion, basic-block window."""

    def __init__(self, module: Module, config: MachineConfig | None = None,
                 fp_mode: str = "precise",
                 max_cycles: int = 100_000_000, tracer=None,
                 injector=None) -> None:
        self.module = module
        self.config = config or MachineConfig()
        self.fp_mode = fp_mode
        self.max_cycles = max_cycles
        self.stats = ScoreboardStats()
        self.tracer = get_tracer(tracer)
        #: optional FaultInjector — interrupts drain the scoreboard (wait
        #: for every issued op to complete) then charge service time;
        #: TLB/bank faults do not apply to this baseline
        self.injector = injector
        self._eval = Interpreter.__new__(Interpreter)
        self._eval.fp_mode = fp_mode
        n = self.config.n_pairs
        self._capacity = {"int": 4 * n, "fadd": n, "fmul": n, "mem": 2 * n}
        # hoisted out of the per-op loop (both fixed by the frozen config)
        self._lat = latency_table(self.config)
        self._mem_cycles = max(1, (self.config.lat_mem + 1) // 2)

    # ------------------------------------------------------------------
    def run(self, func_name: str, args=(),
            memory: MemoryImage | None = None) -> ScoreboardResult:
        if memory is None:
            memory = MemoryImage(self.module)
        self.memory = memory
        value, _ = self._call(self.module.function(func_name), list(args), 0)
        c = self.tracer.counters
        c.inc("sim.scoreboard.cycles", self.stats.cycles)
        c.inc("sim.scoreboard.beats", self.stats.beats)
        c.inc("sim.scoreboard.ops", self.stats.ops)
        c.inc("sim.scoreboard.issue_stalls", self.stats.issue_stalls)
        c.inc("sim.scoreboard.loads", self.stats.loads)
        c.inc("sim.scoreboard.stores", self.stats.stores)
        c.inc("sim.scoreboard.calls", self.stats.calls)
        return ScoreboardResult(value, memory, self.stats)

    # ------------------------------------------------------------------
    def _call(self, func: Function, args: list, clock: int):
        regs: dict[VReg, object] = {}
        ready: dict[VReg, int] = {}
        last_read: dict[VReg, int] = {}
        fu_used: dict[tuple[str, int], int] = {}
        for param, arg in zip(func.params, args):
            regs[param] = self._coerce(param, arg)

        block = func.entry
        while True:
            jump = None
            for i, op in enumerate(block.ops):
                if self.injector is not None and self.injector.pending:
                    clock = self._deliver_faults(func, block, ready, clock)
                try:
                    jump, clock = self._issue(func, op, regs, ready,
                                              last_read, fu_used, clock)
                except TrapError as exc:
                    exc.locate(beat=2 * max(self.stats.cycles, clock),
                               pc=f"{func.name}:{block.name}:{i}")
                    raise
                if clock > self.max_cycles:
                    raise SimError("scoreboard cycle budget exhausted")
                if jump is not None:
                    break
            if jump is None:
                raise SimError(f"{func.name}:{block.name} fell off the end")
            kind, payload, clock = jump
            if kind == "ret":
                self.stats.cycles = max(self.stats.cycles, clock)
                return payload, clock
            block = func.block(payload)

    def _coerce(self, reg: VReg, arg):
        if reg.cls is RegClass.FLT:
            return float(arg)
        if isinstance(arg, str):
            return self.memory.address_of(arg)
        return wrap32(int(arg))

    def _deliver_faults(self, func: Function, block, ready: dict,
                        clock: int) -> int:
        """Service due injector events; returns the post-service clock.

        An interrupt drains the scoreboard — every issued op completes
        (no precise-interrupt shadow state on a 6600-style machine, so it
        must wait) — then charges the service time.
        """
        beat = 2 * max(self.stats.cycles, clock)
        for event in self.injector.due(beat):
            if event.kind in (INTERRUPT, CHECKPOINT):
                drained = max([clock] + list(ready.values()))
                self.stats.interrupts += 1
                clock = drained + (event.service_beats + 1) // 2
                self.stats.cycles = max(self.stats.cycles, clock)
            elif event.kind == FP_TRAP:
                raise TrapError("injected_fp",
                                event.detail or "fault injection",
                                beat=beat, pc=f"{func.name}:{block.name}")
        return clock

    # ------------------------------------------------------------------
    def _operand_time(self, ready: dict, src) -> int:
        if isinstance(src, VReg):
            return ready.get(src, 0)
        return 0

    def _operand(self, regs, src):
        if isinstance(src, VReg):
            if src not in regs:
                raise SimError(f"read of never-written register {src}")
            return regs[src]
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, Symbol):
            return self.memory.address_of(src.name)
        raise SimError(f"bad operand {src!r}")

    def _fu_slot(self, fu_used: dict, kind: str, earliest: int) -> int:
        """First cycle >= earliest with a free unit of this kind."""
        t = earliest
        while fu_used.get((kind, t), 0) >= self._capacity[kind]:
            t += 1
        return t

    # ------------------------------------------------------------------
    def _issue(self, func: Function, op: Operation, regs, ready, last_read,
               fu_used, clock: int):
        """Issue one op in order; returns (jump, new_clock)."""
        opc = op.opcode
        if opc is Opcode.NOP:
            return None, clock
        self.stats.ops += 1

        # out-of-order issue within the block window: the op starts at its
        # earliest hazard-free cycle at or after the block start (``clock``
        # here is the block-start fetch cycle, not a serial program order)
        t = clock
        for src in op.srcs:
            t = max(t, self._operand_time(ready, src))

        if opc in (Opcode.BR, Opcode.JMP, Opcode.RET, Opcode.HALT):
            self.stats.cycles = max(self.stats.cycles, t)
            if opc is Opcode.BR:
                pred = self._operand(regs, op.srcs[0])
                target = op.labels[0].name if pred else op.labels[1].name
                return ("jmp", target, t + 1), t
            if opc is Opcode.JMP:
                return ("jmp", op.labels[0].name, t + 1), t
            value = self._operand(regs, op.srcs[0]) if op.srcs else None
            return ("ret", value, t), t

        if opc is Opcode.CALL:
            self.stats.calls += 1
            args = [self._operand(regs, s) for s in op.srcs]
            result, after = self._call(
                self.module.function(op.callee), args,
                t + self.config.call_overhead_instructions)
            if op.dest is not None:
                regs[op.dest] = result
                ready[op.dest] = after
            return None, after

        # WAW: previous write to the same register must have completed;
        # WAR: previous readers must have issued
        if op.dest is not None:
            t = max(t, ready.get(op.dest, 0))
            t = max(t, last_read.get(op.dest, 0))

        kind = _FU_KIND[op.category]
        slot = self._fu_slot(fu_used, kind, t)
        if slot > clock:
            self.stats.issue_stalls += slot - clock
        fu_used[(kind, slot)] = fu_used.get((kind, slot), 0) + 1

        for src in op.srcs:
            if isinstance(src, VReg):
                last_read[src] = max(last_read.get(src, 0), slot)

        latency_cycles = max(1, (self._lat.get(op.category, 1) + 1) // 2)
        if op.is_memory:
            self._memory_effect(op, regs, ready, slot, latency_cycles)
        else:
            vals = [self._operand(regs, s) for s in op.srcs]
            regs[op.dest] = self._eval._compute(opc, vals)
            ready[op.dest] = slot + latency_cycles
        self.stats.cycles = max(self.stats.cycles, slot)
        return None, clock         # OOO within the block: clock unchanged

    def _memory_effect(self, op, regs, ready, slot, latency_cycles) -> None:
        size = ACCESS_SIZE[op.opcode]
        if op.is_store:
            value, base, offset = (self._operand(regs, s) for s in op.srcs)
            addr = wrap32(base + offset)
            self.stats.stores += 1
            if size == 8:
                self.memory.store_float(addr, value)
            else:
                self.memory.store_int(addr, value)
            return
        base, offset = (self._operand(regs, s) for s in op.srcs)
        addr = wrap32(base + offset)
        self.stats.loads += 1
        if op.is_speculative and not self.memory.check(addr, size):
            result = FUNNY_FLOAT if size == 8 else FUNNY_INT
        elif size == 8:
            result = self.memory.load_float(addr)
        else:
            result = self.memory.load_int(addr)
        regs[op.dest] = result
        ready[op.dest] = slot + self._mem_cycles


def run_scoreboard(module: Module, func_name: str, args=(),
                   config: MachineConfig | None = None,
                   fp_mode: str = "precise",
                   tracer=None, injector=None) -> ScoreboardResult:
    """One-shot scoreboard baseline run."""
    return ScoreboardSimulator(module, config, fp_mode, tracer=tracer,
                               injector=injector).run(func_name, args)
