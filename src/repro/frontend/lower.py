"""Lowering: TinyFlow AST -> IR module.

Type rules are C-flavoured: ``int`` (32-bit) and ``float`` (64-bit double);
mixed arithmetic promotes to float; assignment coerces (float -> int
truncates); comparisons yield predicates, which become 0/1 ints in value
contexts.  ``&&`` and ``||`` are *eager* (branch-bank AND/OR — the paper's
machine evaluates IF chains without branching wherever possible), so
operand expressions must be side-effect free; the lowering rejects calls
inside them.
"""

from __future__ import annotations

import itertools

from ..errors import ParseError
from ..ir import (IRBuilder, Imm, Module, Opcode, RegClass, VReg,
                  verify_module)
from . import ast
from .parser import parse_source

_CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}
_INT_CMP = {"<": Opcode.CMPLT, "<=": Opcode.CMPLE, ">": Opcode.CMPGT,
            ">=": Opcode.CMPGE, "==": Opcode.CMPEQ, "!=": Opcode.CMPNE}
_FLT_CMP = {"<": Opcode.FCMPLT, "<=": Opcode.FCMPLE, ">": Opcode.FCMPGT,
            ">=": Opcode.FCMPGE, "==": Opcode.FCMPEQ, "!=": Opcode.FCMPNE}
_INT_BIN = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
            "/": Opcode.DIV, "%": Opcode.REM, "&": Opcode.AND,
            "|": Opcode.OR, "^": Opcode.XOR, "<<": Opcode.SHL,
            ">>": Opcode.SHR}
_FLT_BIN = {"+": Opcode.FADD, "-": Opcode.FSUB, "*": Opcode.FMUL,
            "/": Opcode.FDIV}


class Lowerer:
    """Lowers one parsed program into a fresh IR module."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.module = Module("tinyflow")
        self.builder = IRBuilder(self.module)
        self.arrays: dict[str, ast.ArrayDecl] = {}
        self.signatures: dict[str, ast.FuncDecl] = {}
        self._labels = itertools.count()

    # ------------------------------------------------------------------
    def lower(self) -> Module:
        for decl in self.program.arrays:
            if decl.name in self.arrays:
                raise ParseError(f"duplicate array {decl.name!r}", decl.line)
            self.arrays[decl.name] = decl
            elem = 4 if decl.elem_type == "int" else 8
            init = decl.init
            if init is not None and decl.elem_type == "float":
                init = [float(v) for v in init]
            self.module.add_array(decl.name, decl.size, elem, init)
        for func in self.program.functions:
            self.signatures[func.name] = func
        for func in self.program.functions:
            self._lower_function(func)
        verify_module(self.module)
        return self.module

    def _fresh(self, hint: str) -> str:
        return f"{hint}{next(self._labels)}"

    # ------------------------------------------------------------------
    def _lower_function(self, func: ast.FuncDecl) -> None:
        b = self.builder
        params = [(name, RegClass.INT if ptype == "int" else RegClass.FLT)
                  for ptype, name in func.params]
        ret_class = {"int": RegClass.INT, "float": RegClass.FLT,
                     "void": None}[func.ret_type]
        b.function(func.name, params, ret_class=ret_class)
        b.block("entry")
        self.vars: dict[str, tuple[VReg, str]] = {
            name: (b.param(name), ptype) for ptype, name in func.params}
        self.ret_type = func.ret_type

        self._lower_body(func.body)
        if not b.cur.is_terminated:
            if func.ret_type == "void":
                b.ret()
            elif func.ret_type == "int":
                b.ret(0)
            else:
                b.ret(0.0)

    def _lower_body(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            if self.builder.cur.is_terminated:
                # code after return: emit into an unreachable block so the
                # verifier still sees structurally valid IR
                self.builder.block(self._fresh("dead"))
            self._lower_stmt(stmt)

    # ------------------------------------------------------------------
    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        b = self.builder
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in self.vars or stmt.name in self.arrays:
                raise ParseError(f"redeclaration of {stmt.name!r}", stmt.line)
            cls = RegClass.INT if stmt.var_type == "int" else RegClass.FLT
            reg = VReg(f"v.{stmt.name}", cls)
            self.vars[stmt.name] = (reg, stmt.var_type)
            value = (self._value(stmt.init, stmt.var_type)
                     if stmt.init is not None
                     else (Imm(0) if stmt.var_type == "int"
                           else Imm(0.0, RegClass.FLT)))
            mov = Opcode.MOV if stmt.var_type == "int" else Opcode.FMOV
            b.emit(mov, [value], dest=reg)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.Return):
            if self.ret_type == "void":
                if stmt.value is not None:
                    raise ParseError("void function returns a value",
                                     stmt.line)
                b.ret()
            else:
                if stmt.value is None:
                    raise ParseError("missing return value", stmt.line)
                b.ret(self._value(stmt.value, self.ret_type))
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        else:  # pragma: no cover - parser produces only the above
            raise ParseError(f"cannot lower {stmt!r}")

    def _lower_assign(self, stmt: ast.Assign) -> None:
        b = self.builder
        if isinstance(stmt.target, ast.Name):
            if stmt.target.name not in self.vars:
                raise ParseError(f"assignment to undeclared "
                                 f"{stmt.target.name!r}", stmt.line)
            reg, var_type = self.vars[stmt.target.name]
            value = self._value(stmt.value, var_type)
            mov = Opcode.MOV if var_type == "int" else Opcode.FMOV
            b.emit(mov, [value], dest=reg)
            return
        decl = self.arrays.get(stmt.target.array)
        if decl is None:
            raise ParseError(f"unknown array {stmt.target.array!r}",
                             stmt.line)
        addr = self._element_address(decl, stmt.target.index)
        value = self._value(stmt.value, decl.elem_type)
        if decl.elem_type == "int":
            b.store(value, addr, 0)
        else:
            b.fstore(value, addr, 0)

    def _lower_if(self, stmt: ast.If) -> None:
        b = self.builder
        then_name = self._fresh("then")
        else_name = self._fresh("else")
        join_name = self._fresh("join")
        b.br(self._pred(stmt.cond), then_name, else_name)
        b.block(then_name)
        self._lower_body(stmt.then_body)
        if not b.cur.is_terminated:
            b.jmp(join_name)
        b.block(else_name)
        self._lower_body(stmt.else_body)
        if not b.cur.is_terminated:
            b.jmp(join_name)
        b.block(join_name)
        if not self._reachable(join_name):
            # both arms returned; keep the block valid for the verifier
            if self.ret_type == "void":
                b.ret()
            elif self.ret_type == "int":
                b.ret(0)
            else:
                b.ret(0.0)

    def _reachable(self, name: str) -> bool:
        func = self.builder.func
        return any(name in blk.successors()
                   for blk in func.blocks.values() if blk.is_terminated)

    def _lower_while(self, stmt: ast.While) -> None:
        b = self.builder
        head = self._fresh("head")
        body = self._fresh("body")
        done = self._fresh("done")
        b.jmp(head)
        b.block(head)
        b.br(self._pred(stmt.cond), body, done)
        b.block(body)
        self._lower_body(stmt.body)
        if not b.cur.is_terminated:
            b.jmp(head)
        b.block(done)

    def _lower_for(self, stmt: ast.For) -> None:
        b = self.builder
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self._fresh("head")
        body = self._fresh("body")
        done = self._fresh("done")
        b.jmp(head)
        b.block(head)
        pred = self._pred(stmt.cond) if stmt.cond is not None \
            else Imm(1, RegClass.PRED)
        b.br(pred, body, done)
        b.block(body)
        self._lower_body(stmt.body)
        if not b.cur.is_terminated:
            if stmt.step is not None:
                self._lower_stmt(stmt.step)
            b.jmp(head)
        b.block(done)

    # ------------------------------------------------------------------
    def _element_address(self, decl: ast.ArrayDecl, index: ast.Expr):
        b = self.builder
        idx, idx_type = self._expr(index)
        if idx_type != "int":
            raise ParseError(f"array index must be int", decl.line)
        shift = 2 if decl.elem_type == "int" else 3
        return b.add(b.addr(decl.name), b.shl(idx, shift))

    def _value(self, expr: ast.Expr, want: str):
        """Lower an expression and coerce it to the wanted type."""
        operand, have = self._expr(expr)
        return self._coerce(operand, have, want)

    def _coerce(self, operand, have: str, want: str):
        b = self.builder
        if have == want:
            return operand
        if have == "pred" and want == "int":
            return b.emit(Opcode.PTOI, [operand]).dest
        if have == "pred" and want == "float":
            return b.cvtif(b.emit(Opcode.PTOI, [operand]).dest)
        if have == "int" and want == "float":
            if isinstance(operand, Imm):
                return Imm(float(operand.value), RegClass.FLT)
            return b.cvtif(operand)
        if have == "float" and want == "int":
            return b.cvtfi(operand)
        raise ParseError(f"cannot convert {have} to {want}")

    def _pred(self, expr: ast.Expr):
        operand, have = self._expr(expr)
        if have == "pred":
            return operand
        if have == "int":
            return self.builder.emit(Opcode.ITOP, [operand]).dest
        raise ParseError("condition must be int or comparison")

    # ------------------------------------------------------------------
    def _expr(self, expr: ast.Expr):
        """Lower an expression; returns (operand, type-string)."""
        b = self.builder
        if isinstance(expr, ast.IntLit):
            return Imm(expr.value), "int"
        if isinstance(expr, ast.FloatLit):
            return Imm(expr.value, RegClass.FLT), "float"
        if isinstance(expr, ast.Name):
            if expr.name not in self.vars:
                raise ParseError(f"unknown variable {expr.name!r}", expr.line)
            reg, var_type = self.vars[expr.name]
            return reg, var_type
        if isinstance(expr, ast.Index):
            decl = self.arrays.get(expr.array)
            if decl is None:
                raise ParseError(f"unknown array {expr.array!r}", expr.line)
            addr = self._element_address(decl, expr.index)
            if decl.elem_type == "int":
                return b.load(addr, 0), "int"
            return b.fload(addr, 0), "float"
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        raise ParseError(f"cannot lower expression {expr!r}")

    def _unary(self, expr: ast.Unary):
        b = self.builder
        operand, have = self._expr(expr.operand)
        if expr.op == "-":
            if have == "float":
                return b.fneg(operand), "float"
            operand = self._coerce(operand, have, "int")
            return b.neg(operand), "int"
        # "!": logical not
        if have == "pred":
            return b.emit(Opcode.PNOT, [operand]).dest, "pred"
        operand = self._coerce(operand, have, "int")
        return b.cmpeq(operand, 0), "pred"

    def _binary(self, expr: ast.Binary):
        b = self.builder
        if expr.op in ("&&", "||"):
            self._reject_calls(expr)
            left = self._pred(expr.left)
            right = self._pred(expr.right)
            opcode = Opcode.PAND if expr.op == "&&" else Opcode.POR
            return b.emit(opcode, [left, right]).dest, "pred"

        left, left_type = self._expr(expr.left)
        right, right_type = self._expr(expr.right)
        if expr.op in _CMP_OPS:
            if left_type == "float" or right_type == "float":
                left = self._coerce(left, left_type, "float")
                right = self._coerce(right, right_type, "float")
                return b.emit(_FLT_CMP[expr.op], [left, right]).dest, "pred"
            left = self._coerce(left, left_type, "int")
            right = self._coerce(right, right_type, "int")
            return b.emit(_INT_CMP[expr.op], [left, right]).dest, "pred"

        if left_type == "float" or right_type == "float":
            if expr.op not in _FLT_BIN:
                raise ParseError(f"operator {expr.op!r} needs int operands",
                                 expr.line)
            left = self._coerce(left, left_type, "float")
            right = self._coerce(right, right_type, "float")
            return b.emit(_FLT_BIN[expr.op], [left, right]).dest, "float"
        left = self._coerce(left, left_type, "int")
        right = self._coerce(right, right_type, "int")
        return b.emit(_INT_BIN[expr.op], [left, right]).dest, "int"

    def _reject_calls(self, expr: ast.Expr) -> None:
        """Eager && / || must not hide side effects."""
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call):
                raise ParseError(
                    "calls are not allowed inside && / || (they are "
                    "evaluated eagerly on this machine)", node.line)
            for child in getattr(node, "__dict__", {}).values():
                if isinstance(child, (ast.Binary, ast.Unary, ast.Index,
                                      ast.Call)):
                    stack.append(child)

    def _call(self, expr: ast.Call):
        sig = self.signatures.get(expr.callee)
        if sig is None:
            raise ParseError(f"unknown function {expr.callee!r}", expr.line)
        if len(expr.args) != len(sig.params):
            raise ParseError(
                f"{expr.callee} takes {len(sig.params)} args", expr.line)
        args = [self._value(arg, ptype)
                for arg, (ptype, _) in zip(expr.args, sig.params)]
        result = self.builder.call(expr.callee, args)
        if sig.ret_type == "void":
            return Imm(0), "int"
        return result, sig.ret_type


def compile_source(source: str) -> Module:
    """Parse and lower TinyFlow source to an IR module."""
    return Lowerer(parse_source(source)).lower()
