"""AST node definitions for TinyFlow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass
class Program:
    arrays: list["ArrayDecl"]
    functions: list["FuncDecl"]


@dataclass
class ArrayDecl:
    name: str
    elem_type: str                  # "int" | "float"
    size: int
    init: Optional[list] = None
    line: int = 0


@dataclass
class FuncDecl:
    name: str
    ret_type: str                   # "int" | "float" | "void"
    params: list[tuple[str, str]]   # (type, name)
    body: list["Stmt"]
    line: int = 0


# --- statements -------------------------------------------------------------


@dataclass
class VarDecl:
    var_type: str
    name: str
    init: Optional["Expr"]
    line: int = 0


@dataclass
class Assign:
    target: Union["Name", "Index"]
    value: "Expr"
    line: int = 0


@dataclass
class If:
    cond: "Expr"
    then_body: list["Stmt"]
    else_body: list["Stmt"]
    line: int = 0


@dataclass
class While:
    cond: "Expr"
    body: list["Stmt"]
    line: int = 0


@dataclass
class For:
    init: Optional["Stmt"]
    cond: Optional["Expr"]
    step: Optional["Stmt"]
    body: list["Stmt"]
    line: int = 0


@dataclass
class Return:
    value: Optional["Expr"]
    line: int = 0


@dataclass
class ExprStmt:
    expr: "Expr"
    line: int = 0


Stmt = Union[VarDecl, Assign, If, While, For, Return, ExprStmt]


# --- expressions -------------------------------------------------------------


@dataclass
class IntLit:
    value: int
    line: int = 0


@dataclass
class FloatLit:
    value: float
    line: int = 0


@dataclass
class Name:
    name: str
    line: int = 0


@dataclass
class Index:
    array: str
    index: "Expr"
    line: int = 0


@dataclass
class Unary:
    op: str                          # "-" | "!"
    operand: "Expr"
    line: int = 0


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass
class Call:
    callee: str
    args: list["Expr"]
    line: int = 0


Expr = Union[IntLit, FloatLit, Name, Index, Unary, Binary, Call]
