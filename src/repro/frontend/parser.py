"""Recursive-descent parser for TinyFlow.

Grammar (precedence from loosest to tightest)::

    program   := (array_decl | func_decl)*
    array_decl:= "array" type NAME "[" INT "]" ("=" "{" literal,* "}")? ";"
    func_decl := type NAME "(" params? ")" block
    block     := "{" stmt* "}"
    stmt      := type NAME ("=" expr)? ";"            (declaration)
               | lvalue "=" expr ";"                  (assignment)
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "for" "(" simple? ";" expr? ";" simple? ")" block
               | "return" expr? ";"
               | expr ";"
    expr      := or ;  or := and ("||" and)* ;  and := cmp ("&&" cmp)*
    cmp       := bitor (("<"|"<="|">"|">="|"=="|"!=") bitor)?
    bitor     := bitxor ("|" bitxor)* ;  bitxor := bitand ("^" bitand)*
    bitand    := shift ("&" shift)* ;  shift := add (("<<"|">>") add)*
    add       := mul (("+"|"-") mul)* ;  mul := unary (("*"|"/"|"%") unary)*
    unary     := ("-"|"!") unary | primary
    primary   := INT | FLOAT | NAME ("(" args ")" | "[" expr "]")? | "(" expr ")"
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast
from .lexer import Token, tokenize

_TYPES = {"int", "float", "void"}


class Parser:
    """One-pass recursive-descent parser."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.cur
        self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        return self.cur.kind == kind and (text is None or self.cur.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.cur.text!r}", self.cur.line)
        return self.advance()

    # -- program ------------------------------------------------------------
    def parse(self) -> ast.Program:
        arrays: list[ast.ArrayDecl] = []
        functions: list[ast.FuncDecl] = []
        while not self.check("eof"):
            if self.check("kw", "array"):
                arrays.append(self.array_decl())
            else:
                functions.append(self.func_decl())
        return ast.Program(arrays, functions)

    def array_decl(self) -> ast.ArrayDecl:
        line = self.expect("kw", "array").line
        elem_type = self.expect("kw").text
        if elem_type not in ("int", "float"):
            raise ParseError(f"bad array type {elem_type!r}", line)
        name = self.expect("name").text
        self.expect("op", "[")
        size = int(self.expect("int").text)
        self.expect("op", "]")
        init = None
        if self.accept("op", "="):
            self.expect("op", "{")
            init = []
            while not self.check("op", "}"):
                negate = self.accept("op", "-") is not None
                if self.check("float"):
                    value = float(self.advance().text)
                else:
                    value = int(self.expect("int").text)
                init.append(-value if negate else value)
                if not self.accept("op", ","):
                    break
            self.expect("op", "}")
        self.expect("op", ";")
        return ast.ArrayDecl(name, elem_type, size, init, line)

    def func_decl(self) -> ast.FuncDecl:
        token = self.expect("kw")
        if token.text not in _TYPES:
            raise ParseError(f"expected a type, found {token.text!r}",
                             token.line)
        name = self.expect("name").text
        self.expect("op", "(")
        params: list[tuple[str, str]] = []
        if not self.check("op", ")"):
            while True:
                ptype = self.expect("kw").text
                if ptype not in ("int", "float"):
                    raise ParseError(f"bad parameter type {ptype!r}",
                                     self.cur.line)
                params.append((ptype, self.expect("name").text))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.block()
        return ast.FuncDecl(name, token.text, params, body, token.line)

    # -- statements -----------------------------------------------------------
    def block(self) -> list[ast.Stmt]:
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.check("op", "}"):
            stmts.append(self.statement())
        self.expect("op", "}")
        return stmts

    def statement(self) -> ast.Stmt:
        if self.check("kw", "if"):
            return self.if_stmt()
        if self.check("kw", "while"):
            return self.while_stmt()
        if self.check("kw", "for"):
            return self.for_stmt()
        if self.check("kw", "return"):
            line = self.advance().line
            value = None if self.check("op", ";") else self.expression()
            self.expect("op", ";")
            return ast.Return(value, line)
        stmt = self.simple_stmt()
        self.expect("op", ";")
        return stmt

    def simple_stmt(self) -> ast.Stmt:
        """declaration | assignment | bare expression (no trailing ';')."""
        if self.check("kw", "int") or self.check("kw", "float"):
            var_type = self.advance().text
            name = self.expect("name").text
            init = self.expression() if self.accept("op", "=") else None
            return ast.VarDecl(var_type, name, init, self.cur.line)
        expr = self.expression()
        if self.accept("op", "="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise ParseError("invalid assignment target", self.cur.line)
            return ast.Assign(expr, self.expression(), self.cur.line)
        return ast.ExprStmt(expr, self.cur.line)

    def if_stmt(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then_body = self.block()
        else_body: list[ast.Stmt] = []
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                else_body = [self.if_stmt()]
            else:
                else_body = self.block()
        return ast.If(cond, then_body, else_body, line)

    def while_stmt(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        return ast.While(cond, self.block(), line)

    def for_stmt(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init = None if self.check("op", ";") else self.simple_stmt()
        self.expect("op", ";")
        cond = None if self.check("op", ";") else self.expression()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self.simple_stmt()
        self.expect("op", ")")
        return ast.For(init, cond, step, self.block(), line)

    # -- expressions ------------------------------------------------------------
    def expression(self) -> ast.Expr:
        return self._binary(0)

    _LEVELS = [
        ("||",),
        ("&&",),
        ("<", "<=", ">", ">=", "==", "!="),
        ("|",),
        ("^",),
        ("&",),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(self._LEVELS):
            return self.unary()
        ops = self._LEVELS[level]
        left = self._binary(level + 1)
        while self.cur.kind == "op" and self.cur.text in ops:
            op = self.advance().text
            right = self._binary(level + 1)
            left = ast.Binary(op, left, right, self.cur.line)
        return left

    def unary(self) -> ast.Expr:
        if self.check("op", "-"):
            line = self.advance().line
            return ast.Unary("-", self.unary(), line)
        if self.check("op", "!"):
            line = self.advance().line
            return ast.Unary("!", self.unary(), line)
        return self.primary()

    def primary(self) -> ast.Expr:
        token = self.cur
        if self.accept("op", "("):
            expr = self.expression()
            self.expect("op", ")")
            return expr
        if token.kind == "int":
            self.advance()
            return ast.IntLit(int(token.text), token.line)
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(float(token.text), token.line)
        if token.kind == "name":
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(token.text, args, token.line)
            if self.accept("op", "["):
                index = self.expression()
                self.expect("op", "]")
                return ast.Index(token.text, index, token.line)
            return ast.Name(token.text, token.line)
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse_source(source: str) -> ast.Program:
    """Parse TinyFlow source into an AST."""
    return Parser(source).parse()
