"""TinyFlow front end: a small C-like language lowered onto the IR."""

from .lexer import Token, tokenize
from .lower import Lowerer, compile_source
from .parser import Parser, parse_source

__all__ = ["Token", "tokenize", "Lowerer", "compile_source", "Parser",
           "parse_source"]
