"""Lexer for TinyFlow, the C-like source language of this reproduction.

The Multiflow compilers took FORTRAN and C; our front end accepts a small
C subset sufficient for the paper's workload shapes (array loops, branchy
scalar code, procedure calls).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ParseError

KEYWORDS = {"int", "float", "void", "array", "if", "else", "while", "for",
            "return"}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>\d+\.\d*([eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%<>=!&|^(){}\[\];,])
""", re.VERBOSE | re.DOTALL)


@dataclass(frozen=True)
class Token:
    kind: str            # "int" | "float" | "name" | "kw" | "op" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.text!r} @{self.line}>"


def tokenize(source: str) -> list[Token]:
    """Tokenize TinyFlow source; raises ParseError on junk."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        text = match.group(0)
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            line += text.count("\n")
        elif kind == "name" and text in KEYWORDS:
            tokens.append(Token("kw", text, line))
        else:
            tokens.append(Token(kind, text, line))
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens
