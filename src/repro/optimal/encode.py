"""The two exact decision procedures over the unified scheduling core.

:class:`TraceDecision` asks "does this acyclic trace graph fit in at
most L long instructions?"; :class:`ModuloDecision` asks "does this
loop graph have a modulo schedule at initiation interval II?".  Both
are :class:`~repro.optimal.solver.Search` subclasses: the constraint
*encoding* lives here, the search machinery there.

The encodings deliberately re-use the heuristics' own authorities so
that "exact" means exact *for the same problem* the heuristics solve:

* dependence edges come straight from :mod:`repro.sched.deps` (acyclic
  ``beat``/``inst_ge``/``inst_gt`` kinds; modulo distance edges under
  weights ``latency - 2*II*dist``);
* resource legality is answered by the same
  :class:`~repro.sched.reservation.ReservationModel` (flat or mod-II
  keying) and memory-bank legality by the same
  :class:`~repro.sched.reservation.BankChecker`, so unit slots, memory
  ports, buses, shared immediate words, branch slots, call-instruction
  exclusivity, and the section 6.4.4 bank-gamble policy all match the
  list and modulo schedulers beat for beat.

Acyclic beat semantics mirror :class:`~repro.trace.scheduler.ListScheduler`
exactly, including its two floor quirks: a ``call`` (and a ``join``) is
gated at instruction granularity (``t >= need_beat // 2``, i.e. one
beat of slack on incoming beat edges), while ``split``/``term`` nodes
require their predicate at the instruction's first beat, and plain ops
require ``issue_beat >= required`` with no slack.

Modulo semantics mirror :class:`~repro.pipeline.scheduler.ModuloScheduler`:
the loop branch is pinned at flat beat ``2*(II-1)`` and the
``modulo_deadlines`` stage cap bounds every window, so a SAT answer
here is a schedule the existing kernel emitter can consume unchanged.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..disambig import Disambiguator
from ..machine import MachineConfig, Unit, units_for
from ..sched.core import (SchedulingOptions, acyclic_heights, cycle_free,
                          modulo_deadlines, modulo_heights, modulo_weight)
from ..sched.deps import AcyclicGraph, ModuloGraph, Node
from ..sched.reservation import (ILLEGAL, BankChecker, Reservation,
                                 ReservationModel)
from .solver import Budget, Search

#: second integer ALU of each beat -> its interchangeable twin.  When the
#: twin is free at the same (instruction, pair) the second slot is a
#: mirror image (same beat offset, hence identical port/bus/immediate and
#: bank behaviour), so the search only tries it while the twin is busy.
_TWINS = {Unit.IALU1_E: Unit.IALU0_E, Unit.IALU1_L: Unit.IALU0_L}

Candidate = tuple[int, Optional[int], Optional[Unit], int]


def modulo_refs_at(graph: ModuloGraph, u: int, v: int, d: int):
    """The comparable reference pair for ops ``u``/``v`` at iteration
    distance ``d`` (None = incomparable, treat as may-conflict) —
    shared with the witness gamble-marking pass."""
    if d == 0:
        ru, rv = graph.ops[u].memref, graph.ops[v].memref
    else:
        ru, rv = graph.shiftable_ref(u), graph.shifted_ref(v, d)
    if ru is None or rv is None:
        return None
    return ru, rv


class TraceDecision(Search):
    """Decision: schedule one trace graph into at most ``length``
    instructions (every node at instruction < length)."""

    def __init__(self, graph: AcyclicGraph, config: MachineConfig,
                 disambiguator: Disambiguator,
                 options: Optional[SchedulingOptions], length: int,
                 budget: Budget,
                 checker: Optional[BankChecker] = None) -> None:
        super().__init__(len(graph.nodes), config.n_pairs, budget)
        self.graph = graph
        self.config = config
        self.options = options if options is not None else SchedulingOptions()
        self.length = length
        self.model = ReservationModel(config)
        self.checker = checker if checker is not None else \
            BankChecker(disambiguator, config, self.options)
        self.height = acyclic_heights(graph)
        self._op_count: dict[int, int] = {}   # ops + branches per instruction
        self._call_instrs: set[int] = set()
        self._mem: list[tuple[int, int]] = []  # (node index, issue beat)
        for i in range(self.n):
            self.hi[i] = 2 * length - 1

    # -- edge semantics -------------------------------------------------
    def _in_slack(self, dst: int) -> int:
        """Beats of slack on incoming beat edges: calls and joins are
        gated by ``_earliest_instruction``'s floor division (t >=
        need_beat // 2); splits, terms and ops read at the exact beat."""
        return 1 if self.graph.nodes[dst].kind in ("join", "call") else 0

    def edge_lo(self, edge, b_src: int) -> int:
        if edge.kind == "beat":
            return b_src + edge.latency - self._in_slack(edge.dst)
        if edge.kind == "inst_ge":
            return 2 * (b_src // 2)
        return 2 * (b_src // 2 + 1)            # inst_gt

    def edge_hi(self, edge, b_dst: int) -> int:
        if edge.kind == "beat":
            return b_dst + self._in_slack(edge.dst) - edge.latency
        if edge.kind == "inst_ge":
            return 2 * (b_dst // 2) + 1
        return 2 * (b_dst // 2) - 1            # inst_gt

    def out_edges(self, index: int):
        return self.graph.succs[index]

    def in_edges(self, index: int):
        return self.graph.preds[index]

    # -- candidates -----------------------------------------------------
    def _slot_range(self, index: int) -> range:
        """Instructions whose first beat falls inside the window."""
        lo, hi = self.lo[index], self.hi[index]
        return range(max(0, (lo + 1) // 2), min(self.length - 1, hi // 2) + 1)

    def candidates(self, index: int) -> Iterator[Candidate]:
        node = self.graph.nodes[index]
        if node.kind in ("join", "term"):
            for f in self._slot_range(index):
                yield (f, None, None, 2 * f)
        elif node.kind == "call":
            for f in self._slot_range(index):
                if f in self._call_instrs or self._op_count.get(f, 0):
                    continue
                yield (f, None, None, 2 * f)
        elif node.kind == "split":
            for f in self._slot_range(index):
                if f in self._call_instrs:
                    continue
                if self.model.branches_in(f) >= self.n_pairs:
                    continue
                for pair in self.pair_order():
                    if self.model.branch_free(f, pair):
                        yield (f, pair, None, 2 * f)
                        break
        else:
            yield from self._op_candidates(index, node)

    def _op_candidates(self, index: int, node: Node) -> Iterator[Candidate]:
        op = node.op
        assert op is not None
        lo, hi = self.lo[index], self.hi[index]
        units = units_for(op)
        f_lo = max(0, lo // 2)
        f_hi = min(self.length - 1, hi // 2)
        for f in range(f_lo, f_hi + 1):
            if f in self._call_instrs:
                continue
            bank_ok: dict[int, bool] = {}      # beat offset -> bank legality
            for unit in units:
                beat = 2 * f + unit.beat_offset
                if beat < lo or beat > hi:
                    continue
                if op.is_memory:
                    off = unit.beat_offset
                    if off not in bank_ok:
                        bank_ok[off] = self._bank_legal(node, beat)
                    if not bank_ok[off]:
                        continue
                twin = _TWINS.get(unit)
                for pair in self.pair_order():
                    if twin is not None and \
                            not self.model.conflicts(op, f, pair, twin):
                        continue               # mirror of the free twin
                    if self.model.conflicts(op, f, pair, unit):
                        continue
                    yield (f, pair, unit, beat)

    def _bank_legal(self, node: Node, beat: int) -> bool:
        """ListScheduler._memory_feasible without the gamble bookkeeping
        (gambles are marked on the witness after the fact)."""
        op = node.op
        assert op is not None
        window = self.checker.window
        for other_index, other_beat in self._mem:
            delta = abs(other_beat - beat)
            if delta >= window:
                continue
            other = self.graph.nodes[other_index]
            assert other.op is not None
            comparable = (op.memref is not None
                          and other.op.memref is not None
                          and node.mem_gen == other.mem_gen)
            refs = (op, other.op) if comparable else None
            verdict = self.checker.check((node.index, other_index),
                                         refs, delta == 0)
            if verdict == ILLEGAL:
                return False
        return True

    # -- booking --------------------------------------------------------
    def book(self, index: int, cand: Candidate):
        f, pair, unit, beat = cand
        node = self.graph.nodes[index]
        if node.kind in ("join", "term"):
            return ("nop",)
        if node.kind == "call":
            self._call_instrs.add(f)
            return ("call", f)
        if node.kind == "split":
            assert pair is not None
            self.model.take_branch(f, pair, index)
            self._op_count[f] = self._op_count.get(f, 0) + 1
            return ("branch", f, pair)
        assert node.op is not None and pair is not None and unit is not None
        res = self.model.place(node.op, index, f, pair, unit)
        self._op_count[f] = self._op_count.get(f, 0) + 1
        if node.op.is_memory:
            self._mem.append((index, beat))
        return ("op", res)

    def unbook(self, index: int, token) -> None:
        kind = token[0]
        if kind == "nop":
            return
        if kind == "call":
            self._call_instrs.discard(token[1])
            return
        if kind == "branch":
            _, f, pair = token
            self.model.release_branch(f, pair)
            self._op_count[f] -= 1
            return
        res: Reservation = token[1]
        self.model.release(res)
        self._op_count[res.f] -= 1
        node = self.graph.nodes[index]
        if node.op is not None and node.op.is_memory:
            self._mem.pop()


class ModuloDecision(Search):
    """Decision: a modulo schedule exists at this initiation interval.

    ``feasible`` is False when the II is refuted before any search — a
    positive-weight recurrence cycle or infeasible branch-pinned
    deadlines — exactly the pre-screens ``ModuloScheduler._try_ii``
    applies.  The caller treats that as a (free) UNSAT.
    """

    def __init__(self, graph: ModuloGraph, config: MachineConfig,
                 disambiguator: Disambiguator,
                 options: Optional[SchedulingOptions], ii: int,
                 budget: Budget,
                 checker: Optional[BankChecker] = None) -> None:
        super().__init__(len(graph.ops), config.n_pairs, budget)
        self.graph = graph
        self.config = config
        self.options = options if options is not None else SchedulingOptions()
        self.ii = ii
        self.model = ReservationModel(config, ii)
        self.checker = checker if checker is not None else \
            BankChecker(disambiguator, config, self.options)
        self._mem: list[tuple[int, int]] = []  # (op index, flat beat)
        self.feasible = cycle_free(graph, ii)
        if not self.feasible:
            return
        dl = modulo_deadlines(graph, ii)
        h = modulo_heights(graph, ii) if dl is not None else None
        if dl is None or h is None:
            self.feasible = False
            return
        self.height = h
        self.hi = list(dl)
        self._seed_lows()

    def _seed_lows(self) -> None:
        """Longest path from the iteration start (Bellman-Ford; the II
        passed the positive-cycle screen, so this converges)."""
        n = self.n
        g = self.graph
        for _round in range(n + 1):
            changed = False
            for e in g.edges:
                if e.src >= n or e.dst >= n or e.src == e.dst:
                    continue
                w = self.lo[e.src] + modulo_weight(e, self.ii)
                if w > self.lo[e.dst]:
                    self.lo[e.dst] = w
                    changed = True
            if not changed:
                break

    # -- edge semantics -------------------------------------------------
    def edge_lo(self, edge, b_src: int) -> int:
        return b_src + edge.latency - 2 * self.ii * edge.dist

    def edge_hi(self, edge, b_dst: int) -> int:
        return b_dst - edge.latency + 2 * self.ii * edge.dist

    def out_edges(self, index: int):
        return self.graph.succs[index]

    def in_edges(self, index: int):
        return self.graph.preds[index]

    # -- candidates -----------------------------------------------------
    def candidates(self, index: int) -> Iterator[Candidate]:
        op = self.graph.ops[index]
        lo, hi = self.lo[index], self.hi[index]
        for f in range(max(0, lo // 2), hi // 2 + 1):
            bank_ok: dict[int, bool] = {}
            for unit in units_for(op):
                beat = 2 * f + unit.beat_offset
                if beat < lo or beat > hi:
                    continue
                if op.is_memory:
                    off = unit.beat_offset
                    if off not in bank_ok:
                        bank_ok[off] = self._bank_legal(index, beat)
                    if not bank_ok[off]:
                        continue
                twin = _TWINS.get(unit)
                for pair in self.pair_order():
                    if twin is not None and \
                            not self.model.conflicts(op, f, pair, twin):
                        continue
                    if self.model.conflicts(op, f, pair, unit):
                        continue
                    yield (f, pair, unit, beat)

    def _bank_legal(self, u: int, bu: int) -> bool:
        """ModuloScheduler._pair_legal over every placed memory op."""
        period = 2 * self.ii
        window = self.checker.window
        for v, bv in self._mem:
            diff = bv - bu
            for db in range(1 - window, window):
                if (db - diff) % period:
                    continue
                d = (db - diff) // period
                verdict = self.checker.check(
                    (u, v, d), self._refs_at(u, v, d), db == 0)
                if verdict == ILLEGAL:
                    return False
        return True

    def _refs_at(self, u: int, v: int, d: int):
        return modulo_refs_at(self.graph, u, v, d)

    # -- booking --------------------------------------------------------
    def book(self, index: int, cand: Candidate):
        f, pair, unit, beat = cand
        op = self.graph.ops[index]
        assert pair is not None and unit is not None
        res = self.model.place(op, index, f, pair, unit)
        if op.is_memory:
            self._mem.append((index, beat))
        return res

    def unbook(self, index: int, token) -> None:
        self.model.release(token)
        if self.graph.ops[index].is_memory:
            self._mem.pop()
