"""Exact scheduling: the oracle engine and the optimality-gap audit.

The third loop engine (after the trace list scheduler and the modulo
scheduler): a pure-python branch-and-bound decision procedure over the
unified scheduling core — same dependence edges, same reservation
legality — that *proves* minimal trace lengths and minimal IIs under a
deterministic node budget, and an audit harness that holds the
heuristics to that line across the whole kernel corpus.
"""

from .audit import (AUDIT_SCHEMA, LOOP_KERNELS, TRACE_CASES, audit_case,
                    audit_payloads, compare_baseline, render_table,
                    run_audit, strip_timing)
from .encode import ModuloDecision, TraceDecision
from .scheduler import (DEFAULT_GATE_NODES, DEFAULT_MAX_NODES,
                        OptimalScheduler, build_modulo_schedule,
                        build_trace_schedule, exact_modulo_schedule,
                        exact_trace_schedule, trace_lower_bound)
from .solver import (FEASIBLE, OPTIMAL, SAT, TIMEOUT, UNKNOWN, UNSAT,
                     Budget, BudgetExhausted, ExactOutcome)

__all__ = [
    "SAT", "UNSAT", "UNKNOWN", "OPTIMAL", "FEASIBLE", "TIMEOUT",
    "Budget", "BudgetExhausted", "ExactOutcome",
    "TraceDecision", "ModuloDecision",
    "DEFAULT_MAX_NODES", "DEFAULT_GATE_NODES",
    "trace_lower_bound", "exact_trace_schedule", "build_trace_schedule",
    "exact_modulo_schedule", "build_modulo_schedule", "OptimalScheduler",
    "AUDIT_SCHEMA", "TRACE_CASES", "LOOP_KERNELS",
    "audit_payloads", "audit_case", "run_audit", "strip_timing",
    "render_table", "compare_baseline",
]
