"""The exact-scheduling search core: budgeted branch-and-bound with
incremental difference-logic propagation.

Both exact engines — acyclic (trace length) and modulo (initiation
interval) — are *decision procedures*: "does a schedule exist within
this bound?".  They share the machinery in this module:

* a beat *window* ``[lo, hi]`` per schedulable node, seeded by one
  longest-path sweep and tightened incrementally as ops are placed
  (difference-logic propagation over the dependence edges);
* depth-first search with chronological backtracking over placements,
  restoring windows from an undo trail;
* *symmetry reduction*: I-F pairs are interchangeable a priori (every
  reservation resource is keyed identically per pair), so candidates
  only consider already-used pairs plus the lowest-indexed fresh one,
  and among same-beat integer ALUs only the first free slot is tried —
  both classic interchangeable-resource reductions that preserve
  completeness;
* a :class:`Budget` counting search nodes (deterministic) with an
  optional wall-clock cap (for interactive use; leave it off when
  byte-identical reruns matter).

A decision returns :data:`SAT` with a witness, :data:`UNSAT` with an
exhausted search tree (a *proof* — the search enumerates every
placement the window logic cannot refute), or :data:`UNKNOWN` when the
budget ran out first.  The iteration logic that turns decisions into
``OPTIMAL | FEASIBLE | TIMEOUT`` results lives in
:mod:`repro.optimal.scheduler`.

Resource legality is not re-encoded: candidates are filtered through
the *same* :class:`~repro.sched.reservation.ReservationModel` and
:class:`~repro.sched.reservation.BankChecker` the heuristics use, so
"optimal" here means optimal under exactly the machine model the
heuristics schedule against — unit slots, memory ports, buses, shared
immediate words, branch slots, and bank legality included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

#: decision outcomes
SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"

#: solve statuses (decision iterations folded into one typed result)
OPTIMAL = "OPTIMAL"
FEASIBLE = "FEASIBLE"
TIMEOUT = "TIMEOUT"


class BudgetExhausted(Exception):
    """Internal control flow: the search spent its budget."""


@dataclass
class Budget:
    """A deterministic node budget with an optional wall-clock cap.

    ``max_nodes`` counts candidate placements tried anywhere under this
    budget (decisions share it across an II / length iteration), so two
    runs with the same inputs spend identically.  ``max_seconds`` is a
    safety net for interactive use; it makes reruns time-dependent, so
    the audit's determinism tests leave it ``None``.
    """

    max_nodes: int = 200_000
    max_seconds: Optional[float] = None
    nodes: int = 0
    _t0: float = field(default_factory=time.perf_counter)

    def spend(self, n: int = 1) -> None:
        self.nodes += n
        if self.nodes > self.max_nodes:
            raise BudgetExhausted()
        if self.max_seconds is not None and (self.nodes & 0x3FF) == 0 \
                and time.perf_counter() - self._t0 > self.max_seconds:
            raise BudgetExhausted()

    @property
    def exhausted(self) -> bool:
        if self.nodes > self.max_nodes:
            return True
        return (self.max_seconds is not None
                and time.perf_counter() - self._t0 > self.max_seconds)


@dataclass
class ExactOutcome:
    """One exact solve, folded over its decision iterations.

    ``value`` is the proven-or-best bound (schedule length in
    instructions, or II); ``lower_bound`` is the largest bound proven
    unreachable plus one (so ``value == lower_bound`` iff optimal).
    ``witness`` is the solver's own schedule when it found one better
    than (or equal to) the heuristic's; ``None`` means the heuristic
    schedule itself is the witness.
    """

    status: str                       # OPTIMAL | FEASIBLE | TIMEOUT
    value: Optional[int]
    lower_bound: int
    nodes: int
    seconds: float
    witness: Optional[dict] = None    # node index -> (f, pair, unit)
    detail: str = ""

    @property
    def proven(self) -> bool:
        return self.status == OPTIMAL


class Search:
    """Shared DFS skeleton over per-node beat windows.

    Subclasses define the edge semantics (:meth:`edge_lo` /
    :meth:`edge_hi`), the candidate generator (:meth:`candidates`), and
    resource booking (:meth:`book` / :meth:`unbook`).  The base class
    owns windows, propagation, the trail, pair-symmetry bookkeeping,
    and the recursive search itself.
    """

    #: safety cap on propagation sweeps per placement (cyclic modulo
    #: graphs converge under a feasible II; this bounds the pathological
    #: case without affecting soundness — propagation only prunes)
    MAX_PROP_ROUNDS = 64

    def __init__(self, n: int, n_pairs: int, budget: Budget) -> None:
        self.n = n
        self.n_pairs = n_pairs
        self.budget = budget
        self.lo = [0] * n
        self.hi = [0] * n
        self.placed: dict[int, tuple] = {}   # index -> (f, pair, unit, beat)
        self.used_pairs: set[int] = set()
        self._trail: list[tuple[int, int, int]] = []  # (which, index, old)
        #: priority tie-break (higher = schedule earlier); subclasses fill
        self.height = [0] * n

    # -- subclass surface ----------------------------------------------
    def edge_lo(self, edge, b_src: int) -> int:
        """Lower bound on dst's beat given src at (or at least at) b_src."""
        raise NotImplementedError

    def edge_hi(self, edge, b_dst: int) -> int:
        """Upper bound on src's beat given dst at (or at most at) b_dst."""
        raise NotImplementedError

    def out_edges(self, index: int):
        raise NotImplementedError

    def in_edges(self, index: int):
        raise NotImplementedError

    def candidates(self, index: int):
        """Yield (f, pair, unit, beat) placements inside the window."""
        raise NotImplementedError

    def book(self, index: int, cand: tuple) -> Any:
        """Reserve resources; return a token for :meth:`unbook`."""
        raise NotImplementedError

    def unbook(self, index: int, token: Any) -> None:
        raise NotImplementedError

    # -- pair symmetry --------------------------------------------------
    def pair_order(self):
        """Used pairs in index order, plus the lowest fresh pair."""
        fresh = None
        for p in range(self.n_pairs):
            if p not in self.used_pairs:
                fresh = p
                break
        for p in sorted(self.used_pairs):
            yield p
        if fresh is not None:
            yield fresh

    # -- windows and the trail -----------------------------------------
    def _set_lo(self, index: int, value: int) -> bool:
        if value > self.lo[index]:
            self._trail.append((0, index, self.lo[index]))
            self.lo[index] = value
            return True
        return False

    def _set_hi(self, index: int, value: int) -> bool:
        if value < self.hi[index]:
            self._trail.append((1, index, self.hi[index]))
            self.hi[index] = value
            return True
        return False

    def _mark(self) -> int:
        return len(self._trail)

    def _undo(self, mark: int) -> None:
        while len(self._trail) > mark:
            which, index, old = self._trail.pop()
            if which == 0:
                self.lo[index] = old
            else:
                self.hi[index] = old

    def propagate(self, seeds: list[int]) -> bool:
        """Difference-logic closure from changed nodes; False = empty
        window somewhere (the placement is refuted)."""
        work = list(seeds)
        rounds = 0
        while work and rounds < self.MAX_PROP_ROUNDS * self.n:
            rounds += 1
            index = work.pop()
            if self.lo[index] > self.hi[index]:
                return False
            for e in self.out_edges(index):
                dst = e.dst
                if dst == index or dst >= self.n or dst in self.placed:
                    continue
                if self._set_lo(dst, self.edge_lo(e, self.lo[index])):
                    if self.lo[dst] > self.hi[dst]:
                        return False
                    work.append(dst)
            for e in self.in_edges(index):
                src = e.src
                if src == index or src >= self.n or src in self.placed:
                    continue
                if self._set_hi(src, self.edge_hi(e, self.hi[index])):
                    if self.lo[src] > self.hi[src]:
                        return False
                    work.append(src)
        return True

    def _anchor(self, index: int, beat: int) -> bool:
        """Pin a placed node's window and tighten every unplaced
        neighbour exactly; False when a window empties."""
        self._set_lo(index, beat)
        self._set_hi(index, beat)
        if self.lo[index] > self.hi[index]:
            return False
        return self.propagate([index])

    # -- the search -----------------------------------------------------
    def _select(self) -> Optional[int]:
        """Most-constrained unplaced node: smallest window, then the
        scheduler's own priority order (height, then index)."""
        best = None
        best_key = None
        for i in range(self.n):
            if i in self.placed:
                continue
            key = (self.hi[i] - self.lo[i], -self.height[i], i)
            if best_key is None or key < best_key:
                best, best_key = i, key
        return best

    def solve(self) -> Optional[dict[int, tuple]]:
        """Run the DFS; a witness assignment, or None (= UNSAT).

        Raises :class:`BudgetExhausted` when the budget dies first —
        the caller maps that to :data:`UNKNOWN`.
        """
        if not self.propagate(list(range(self.n))):
            return None
        if self._dfs():
            return dict(self.placed)
        return None

    def _dfs(self) -> bool:
        index = self._select()
        if index is None:
            return True
        for cand in self.candidates(index):
            self.budget.spend()
            f, pair, unit, beat = cand
            mark = self._mark()
            token = self.book(index, cand)
            if token is None:               # resource refusal
                self._undo(mark)
                continue
            self.placed[index] = cand
            fresh_pair = pair is not None and pair not in self.used_pairs
            if fresh_pair:
                self.used_pairs.add(pair)
            if self._anchor(index, beat) and self._dfs():
                return True
            if fresh_pair:
                self.used_pairs.discard(pair)
            del self.placed[index]
            self.unbook(index, token)
            self._undo(mark)
        return False
