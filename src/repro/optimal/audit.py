"""The optimality-gap audit: oracle vs heuristic over the kernel corpus.

One audit *case* is one kernel preparation; its row aggregates every
exact solve inside it:

* **trace mode** walks the kernel exactly like the golden dep-graph
  corpus generator (select the likeliest trace, build its graph, mark
  scheduled, remove blocks — the compiler's own loop), list-schedules
  each trace graph for the incumbent, and asks the exact engine to
  certify or beat it.  The row sums schedule lengths over the walk.
* **loop mode** runs the pipeline shape matcher over the rolled kernel,
  modulo-schedules each accepted loop for the incumbent II, and asks
  the exact engine to certify or beat it.

Rows are deterministic at a fixed node budget — no wall-clock cap is
used — except the ``time_s`` field, which exists for humans and is
excluded from byte-identity comparisons (see ``strip_timing``).  Cases
fan out through the parallel runner's ``audit`` handler, and the
serial ``--jobs 1`` schedule is the reference the parallel one must
reproduce.

The checked-in baseline (``tests/data/audit_baseline.json``) pins each
case's gap and proof status; :func:`compare_baseline` reports
regressions (a gap that grew, or a proof that was lost) so CI can hold
the heuristics to the oracle's line.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional

from ..analysis import compute_liveness
from ..disambig import Disambiguator, derive_memrefs
from ..errors import DisambigError, PipelineError, ScheduleError
from ..machine import TRACE_28_200, MachineConfig
from ..sched import SchedulingOptions
from ..workloads import ALL_KERNELS, get_kernel
from .scheduler import (DEFAULT_MAX_NODES, exact_modulo_schedule,
                        exact_trace_schedule)
from .solver import FEASIBLE, OPTIMAL, TIMEOUT

AUDIT_SCHEMA = 1

#: (kernel, n, unroll) trace-mode cases — the golden corpus's own walk
TRACE_CASES: list[tuple[str, int, int]] = \
    [(name, 16, 0) for name in sorted(ALL_KERNELS)] + [
        ("daxpy", 16, 4), ("dot", 16, 4), ("state_machine", 16, 4)]

#: loop-mode kernels (the bench_pipeline set: every kernel whose
#: innermost loop the shape matcher accepts)
LOOP_KERNELS = ["daxpy", "vadd", "dot", "fir4", "stencil3", "ll1_hydro",
                "ll3_inner", "ll12_diff", "ll5_tridiag"]

#: small-graph subset for the CI smoke audit
TINY_TRACE = ["copy", "vadd", "daxpy", "dot", "scale", "int_sum", "clamp",
              "saxpy_int", "stencil3", "horner", "count_matches"]
TINY_LOOPS = ["daxpy", "vadd", "dot"]

#: status severity for worst-of aggregation
_SEVERITY = {OPTIMAL: 0, FEASIBLE: 1, TIMEOUT: 2, "ERROR": 3}


def _worst(statuses) -> str:
    return max(statuses, key=lambda s: _SEVERITY.get(s, 3), default=OPTIMAL)


def audit_payloads(max_nodes: int = DEFAULT_MAX_NODES,
                   tiny: bool = False) -> list[dict]:
    """The case list, in the deterministic reference order."""
    traces = [(k, n, u) for (k, n, u) in TRACE_CASES if k in TINY_TRACE
              and u == 0] if tiny else TRACE_CASES
    loops = TINY_LOOPS if tiny else LOOP_KERNELS
    payloads = [{"mode": "trace", "kernel": k, "n": n, "unroll": u,
                 "case": f"{k}/n{n}/u{u}", "max_nodes": max_nodes}
                for (k, n, u) in traces]
    payloads += [{"mode": "loop", "kernel": k, "n": 16,
                  "case": f"{k}/loops", "max_nodes": max_nodes}
                 for k in loops]
    return payloads


def audit_case(payload: dict, tracer=None,
               config: Optional[MachineConfig] = None) -> dict:
    """One audit row (the ``audit`` task handler's body)."""
    config = config if config is not None else TRACE_28_200
    if payload["mode"] == "trace":
        return _audit_trace_case(payload, config)
    return _audit_loop_case(payload, config)


# ---------------------------------------------------------------------------
# trace mode


def _audit_trace_case(payload: dict, config: MachineConfig) -> dict:
    from ..opt import inline
    from ..harness.measure import prepare_modules
    from ..trace import (TraceSelector, build_trace_graph, clone_function)
    from ..trace.profile import estimate_static
    from ..trace.scheduler import ListScheduler

    t0 = time.perf_counter()
    # the inliner tags blocks from a process-global counter; pin it per
    # case so rows are identical no matter what ran earlier (the same
    # trick the golden corpus generator uses)
    inline._inline_counter = itertools.count()
    kernel = get_kernel(payload["kernel"])
    _, module = prepare_modules(kernel, payload["n"],
                                unroll=payload["unroll"], inline=48)
    options = SchedulingOptions()
    max_nodes = payload["max_nodes"]
    graphs = improved = 0
    heuristic_total = optimal_total = lower_total = nodes_total = 0
    statuses: list[str] = []
    for fname in sorted(module.functions):
        func = module.functions[fname]
        derive_memrefs(func)
        work = clone_function(func)
        disambig = Disambiguator(module)
        live_in_map = dict(compute_liveness(work).live_in)
        selector = TraceSelector(work, estimate_static(work))
        entry_labels = {work.entry.name}
        while True:
            trace = selector.next_trace()
            if trace is None:
                break
            graph = build_trace_graph(work, trace, disambig, config,
                                      options, live_in_map, entry_labels)
            heur = ListScheduler(graph, config, disambig, options,
                                 trace_id=f"{fname}#a{graphs}").run()
            out = exact_trace_schedule(graph, config, disambig, options,
                                       upper=heur.n_instructions,
                                       max_nodes=max_nodes)
            graphs += 1
            heuristic_total += heur.n_instructions
            optimal_total += out.value
            lower_total += out.lower_bound
            nodes_total += out.nodes
            statuses.append(out.status)
            if out.witness is not None:
                improved += 1
            for node in graph.splits():
                entry_labels.add(node.off_trace)
            selector.mark_scheduled(trace)
            for bname in trace.blocks:
                work.remove_block(bname)
    return {
        "case": payload["case"], "mode": "trace", "graphs": graphs,
        "heuristic": heuristic_total, "optimal": optimal_total,
        "lower_bound": lower_total, "gap": heuristic_total - optimal_total,
        "improved": improved, "status": _worst(statuses),
        "nodes": nodes_total,
        "time_s": round(time.perf_counter() - t0, 3),
    }


# ---------------------------------------------------------------------------
# loop mode


def _audit_loop_case(payload: dict, config: MachineConfig) -> dict:
    from ..opt import inline
    from ..harness.measure import prepare_modules
    from ..pipeline import (ModuloScheduler, build_loop_graph,
                            find_pipeline_loops)
    from ..trace import clone_function

    t0 = time.perf_counter()
    inline._inline_counter = itertools.count()
    kernel = get_kernel(payload["kernel"])
    _, module = prepare_modules(kernel, payload["n"], unroll=0, inline=48)
    options = SchedulingOptions()
    max_nodes = payload["max_nodes"]
    loops = improved = 0
    heuristic_total = optimal_total = lower_total = nodes_total = 0
    mii_total = 0
    statuses: list[str] = []
    details: list[str] = []
    for fname in sorted(module.functions):
        func = module.functions[fname]
        derive_memrefs(func)
        work = clone_function(func)
        disambig = Disambiguator(module)
        live_in_map = dict(compute_liveness(work).live_in)
        for loop, pl, _why in find_pipeline_loops(work, live_in_map):
            if pl is None:
                continue
            graph = build_loop_graph(pl, config, disambig)
            try:
                sched = ModuloScheduler(graph, config, disambig,
                                        options).run()
            except (PipelineError, ScheduleError, DisambigError) as exc:
                details.append(f"{loop.header}: heuristic failed: {exc}")
                continue
            out = exact_modulo_schedule(graph, config, disambig, options,
                                        upper_ii=sched.ii,
                                        max_nodes=max_nodes)
            loops += 1
            heuristic_total += sched.ii
            optimal_total += out.value
            lower_total += out.lower_bound
            mii_total += sched.mii
            nodes_total += out.nodes
            statuses.append(out.status)
            if out.witness is not None:
                improved += 1
            details.append(
                f"{loop.header}: ii={sched.ii} mii={sched.mii} "
                f"oracle={out.value} [{out.status}]")
    return {
        "case": payload["case"], "mode": "loop", "loops": loops,
        "heuristic": heuristic_total, "optimal": optimal_total,
        "lower_bound": lower_total, "mii": mii_total,
        "gap": heuristic_total - optimal_total, "improved": improved,
        "status": _worst(statuses), "nodes": nodes_total,
        "detail": "; ".join(details),
        "time_s": round(time.perf_counter() - t0, 3),
    }


# ---------------------------------------------------------------------------
# the driver


def run_audit(jobs: int = 1, max_nodes: int = DEFAULT_MAX_NODES,
              tiny: bool = False, tracer=None,
              timeout_s: Optional[float] = None) -> dict:
    """Run the whole audit through the parallel runner; the report dict
    (rows in case order, byte-identical at any ``jobs`` after
    :func:`strip_timing`)."""
    from ..harness.runner import run_tasks

    payloads = audit_payloads(max_nodes=max_nodes, tiny=tiny)
    outcomes = run_tasks("audit", payloads, jobs=jobs,
                         timeout_s=timeout_s, tracer=tracer)
    rows = []
    for payload, outcome in zip(payloads, outcomes):
        if outcome.ok:
            rows.append(outcome.value)
        else:
            first = (outcome.error or "").strip().splitlines()
            rows.append({"case": payload["case"],
                         "mode": payload["mode"], "status": "ERROR",
                         "gap": 0, "error": first[-1] if first else "?"})
    optimal_cases = sum(1 for r in rows if r["status"] == OPTIMAL)
    return {
        "schema": AUDIT_SCHEMA,
        "config": "TRACE_28_200",
        "budget_nodes": max_nodes,
        "tiny": tiny,
        "rows": rows,
        "summary": {
            "cases": len(rows),
            "optimal_cases": optimal_cases,
            "timeout_cases": sum(1 for r in rows
                                 if r["status"] == TIMEOUT),
            "error_cases": sum(1 for r in rows
                               if r["status"] == "ERROR"),
            "total_gap": sum(r.get("gap", 0) for r in rows),
            "improved_schedules": sum(r.get("improved", 0)
                                      for r in rows),
        },
    }


def strip_timing(report: dict) -> dict:
    """The report minus its wall-clock fields — the part that must be
    byte-identical across ``--jobs`` settings and reruns."""
    out = dict(report)
    out["rows"] = [{k: v for k, v in row.items() if k != "time_s"}
                   for row in report["rows"]]
    return out


def render_table(report: dict) -> str:
    """Human gap table (one line per case)."""
    lines = [f"{'case':<24} {'mode':<6} {'heur':>5} {'oracle':>6} "
             f"{'gap':>4} {'status':<8} {'nodes':>9} {'time':>7}"]
    for r in report["rows"]:
        lines.append(
            f"{r['case']:<24} {r['mode']:<6} "
            f"{r.get('heuristic', '-'):>5} {r.get('optimal', '-'):>6} "
            f"{r.get('gap', '-'):>4} {r['status']:<8} "
            f"{r.get('nodes', 0):>9} {r.get('time_s', 0.0):>6.2f}s")
    s = report["summary"]
    lines.append(
        f"-- {s['cases']} cases: {s['optimal_cases']} proven optimal, "
        f"{s['timeout_cases']} timeout, {s['error_cases']} error; "
        f"total gap {s['total_gap']}, "
        f"{s['improved_schedules']} schedules improved by the oracle")
    return "\n".join(lines)


def compare_baseline(report: dict, baseline: dict) -> list[str]:
    """Regressions of this report against a baseline: a case whose gap
    grew, or whose proof status got worse.  New cases are fine (they
    extend coverage); vanished cases are reported (lost coverage)."""
    base_rows = {r["case"]: r for r in baseline.get("rows", [])}
    problems = []
    for row in report["rows"]:
        base = base_rows.pop(row["case"], None)
        if base is None:
            continue
        if row.get("gap", 0) > base.get("gap", 0):
            problems.append(
                f"{row['case']}: gap grew {base.get('gap', 0)} -> "
                f"{row.get('gap', 0)}")
        if _SEVERITY.get(row["status"], 3) > \
                _SEVERITY.get(base["status"], 3):
            problems.append(
                f"{row['case']}: status worsened {base['status']} -> "
                f"{row['status']}")
    for case in sorted(base_rows):
        problems.append(f"{case}: missing from this audit run")
    return problems
