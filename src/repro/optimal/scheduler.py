"""Exact solve drivers and the ``optimal`` Scheduler strategy.

:func:`exact_trace_schedule` and :func:`exact_modulo_schedule` turn the
decision procedures of :mod:`repro.optimal.encode` into typed
:class:`~repro.optimal.solver.ExactOutcome` results by iterating the
bound upward from a sound lower bound toward the heuristic's answer:

* every bound below the first SAT is proven UNSAT, so the first SAT is
  **OPTIMAL** by construction (the modulo iteration is exactly the
  MII-upward search :class:`~repro.pipeline.scheduler.ModuloScheduler`
  runs, made exact);
* a SAT found after a budget-exhausted (UNKNOWN) bound is **FEASIBLE**
  — an improvement over the heuristic whose minimality is unproven;
* no improvement plus an UNKNOWN bound is **TIMEOUT**: the heuristic's
  answer stands but is uncertified, with ``lower_bound`` recording how
  far the proof got.

Budgets are *per decision* (each candidate length/II gets a fresh node
allowance), so proof depth is predictable and — with no wall-clock cap
— the whole solve is deterministic, which the compile cache and the
``--jobs`` byte-identity guarantee both rely on.

:class:`OptimalScheduler` is the third strategy over the unified
scheduling core: it runs the heuristic
:class:`~repro.trace.scheduler.ListScheduler` for an incumbent, then —
under a size gate — proves it optimal or replaces it with a strictly
shorter exact schedule.  Its result is therefore never worse than the
heuristic's, and falls back to it gracefully (recorded on
``fallback_reason``) when the graph is too big or the budget dies.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from ..disambig import Answer, Disambiguator
from ..machine import MachineConfig
from ..obs import get_tracer
from ..sched.core import Scheduler, SchedulingOptions, rec_mii
from ..sched.deps import AcyclicGraph, ModuloGraph
from ..sched.reservation import BankChecker, res_mii
from .encode import ModuloDecision, TraceDecision, modulo_refs_at
from .solver import (FEASIBLE, OPTIMAL, TIMEOUT, Budget, BudgetExhausted,
                     ExactOutcome)

#: default node allowance per decision (one candidate length / II)
DEFAULT_MAX_NODES = 20_000
#: default trace-graph size gate for ``strategy=optimal`` (nodes)
DEFAULT_GATE_NODES = 48


def _remaining(max_seconds: Optional[float], t0: float) -> Optional[float]:
    if max_seconds is None:
        return None
    return max_seconds - (time.perf_counter() - t0)


# ---------------------------------------------------------------------------
# acyclic (trace) solve


def trace_lower_bound(graph: AcyclicGraph, config: MachineConfig,
                      disambiguator: Disambiguator,
                      options: Optional[SchedulingOptions]) -> int:
    """A sound lower bound on trace schedule length, in instructions:
    critical path (via the decision's own window propagation), unit/
    port/bus capacity (``res_mii`` counts per-instruction supply), the
    branch-slot limit, and call-instruction exclusivity."""
    nodes = graph.nodes
    probe = TraceDecision(graph, config, disambiguator, options,
                          1 << 20, Budget(max_nodes=1 << 30))
    lb_path = 1
    if probe.propagate(list(range(probe.n))):
        lb_path = 1 + max((lo // 2 for lo in probe.lo), default=0)
    ops = [nd.op for nd in nodes if nd.kind == "op" and nd.op is not None]
    lb_res = res_mii(ops, config) if ops else 0
    calls = sum(1 for nd in nodes if nd.kind == "call")
    splits = sum(1 for nd in nodes if nd.kind == "split")
    lb_branch = math.ceil(splits / config.n_pairs)
    return max(1, lb_path, lb_res + calls, lb_branch)


def exact_trace_schedule(graph: AcyclicGraph, config: MachineConfig,
                         disambiguator: Disambiguator,
                         options: Optional[SchedulingOptions], *,
                         upper: int,
                         max_nodes: int = DEFAULT_MAX_NODES,
                         max_seconds: Optional[float] = None,
                         checker: Optional[BankChecker] = None
                         ) -> ExactOutcome:
    """Prove the minimal schedule length for one trace graph.

    ``upper`` is the heuristic's length (a known-SAT witness): lengths
    are decided from the lower bound upward, so the loop only ever runs
    over lengths that would *improve* on the heuristic.
    """
    t0 = time.perf_counter()
    if checker is None:
        checker = BankChecker(disambiguator, config,
                              options if options is not None
                              else SchedulingOptions())
    lb = trace_lower_bound(graph, config, disambiguator, options)
    total = 0
    unknown_at: Optional[int] = None
    for length in range(lb, upper):
        left = _remaining(max_seconds, t0)
        if left is not None and left <= 0:
            break
        budget = Budget(max_nodes=max_nodes, max_seconds=left)
        dec = TraceDecision(graph, config, disambiguator, options,
                            length, budget, checker)
        try:
            witness = dec.solve()
        except BudgetExhausted:
            total += budget.nodes
            if unknown_at is None:
                unknown_at = length
            continue
        total += budget.nodes
        if witness is not None:
            proven = unknown_at is None
            return ExactOutcome(
                status=OPTIMAL if proven else FEASIBLE, value=length,
                lower_bound=length if proven else unknown_at,
                nodes=total, seconds=time.perf_counter() - t0,
                witness=witness,
                detail=f"improved on heuristic length {upper}")
    if unknown_at is None:
        return ExactOutcome(
            status=OPTIMAL, value=upper, lower_bound=upper, nodes=total,
            seconds=time.perf_counter() - t0,
            detail="heuristic schedule proven optimal")
    return ExactOutcome(
        status=TIMEOUT, value=upper, lower_bound=unknown_at, nodes=total,
        seconds=time.perf_counter() - t0,
        detail=f"budget exhausted deciding length {unknown_at}")


def build_trace_schedule(graph: AcyclicGraph, checker: BankChecker,
                         witness: dict):
    """Materialize a solver witness as the trace engine's
    :class:`~repro.trace.scheduler.TraceSchedule`, with bank gambles
    marked the way the list scheduler marks them (both sides of every
    unproven in-window pair are stall-tolerant; the later access of
    each pair is the one counted — it takes the stall)."""
    from ..trace.scheduler import PlacedNode, TraceSchedule

    result = TraceSchedule()
    for index in sorted(witness):
        f, pair, unit, _beat = witness[index]
        node = graph.nodes[index]
        result.placements[index] = PlacedNode(
            node, f, pair if pair is not None else -1, unit)
    result.n_instructions = 1 + max(
        p.instruction for p in result.placements.values())

    mem = sorted((p for p in result.placements.values()
                  if p.node.op is not None and p.node.op.is_memory),
                 key=lambda p: (p.issue_beat, p.node.index))
    window = checker.window
    counted: set[int] = set()
    for a, u in enumerate(mem):
        for v in mem[a + 1:]:
            delta = v.issue_beat - u.issue_beat
            if delta >= window:
                break                  # sorted by beat: no later hits
            if delta == 0:
                continue               # same-beat pairs are controller-proven
            comparable = (u.node.op.memref is not None
                          and v.node.op.memref is not None
                          and u.node.mem_gen == v.node.mem_gen)
            refs = (u.node.op, v.node.op) if comparable else None
            answer = checker.bank_answer(
                (u.node.index, v.node.index), refs)
            if answer is Answer.MAYBE:
                u.gamble = True
                v.gamble = True
                counted.add(v.node.index)
    result.gambles = len(counted)
    return result


# ---------------------------------------------------------------------------
# modulo (loop) solve


def exact_modulo_schedule(graph: ModuloGraph, config: MachineConfig,
                          disambiguator: Disambiguator,
                          options: Optional[SchedulingOptions], *,
                          upper_ii: int,
                          max_nodes: int = DEFAULT_MAX_NODES,
                          max_seconds: Optional[float] = None,
                          checker: Optional[BankChecker] = None
                          ) -> ExactOutcome:
    """Prove the minimal feasible II for one loop graph.

    IIs iterate upward from ``MII = max(2, ResMII, RecMII)`` — the same
    floor and the same lower bounds the modulo scheduler uses — toward
    the heuristic's achieved ``upper_ii``.
    """
    t0 = time.perf_counter()
    if checker is None:
        checker = BankChecker(disambiguator, config,
                              options if options is not None
                              else SchedulingOptions())
    rmii = res_mii(graph.ops, config)
    rcmii = rec_mii(graph, max(upper_ii, rmii) + 1)
    if rcmii is None:
        # the heuristic scheduled at upper_ii, so a positive cycle at
        # every II <= upper_ii cannot happen; defensive only
        return ExactOutcome(
            status=TIMEOUT, value=upper_ii, lower_bound=1, nodes=0,
            seconds=time.perf_counter() - t0,
            detail="recurrence bound not found below heuristic II")
    mii = max(2, rmii, rcmii)
    total = 0
    unknown_at: Optional[int] = None
    for ii in range(mii, upper_ii):
        left = _remaining(max_seconds, t0)
        if left is not None and left <= 0:
            break
        budget = Budget(max_nodes=max_nodes, max_seconds=left)
        dec = ModuloDecision(graph, config, disambiguator, options,
                             ii, budget, checker)
        if not dec.feasible:
            continue                   # pre-screen refutation: UNSAT
        try:
            witness = dec.solve()
        except BudgetExhausted:
            total += budget.nodes
            if unknown_at is None:
                unknown_at = ii
            continue
        total += budget.nodes
        if witness is not None:
            proven = unknown_at is None
            return ExactOutcome(
                status=OPTIMAL if proven else FEASIBLE, value=ii,
                lower_bound=ii if proven else unknown_at,
                nodes=total, seconds=time.perf_counter() - t0,
                witness=witness,
                detail=f"improved on heuristic II {upper_ii} "
                       f"(mii={mii})")
    if unknown_at is None:
        return ExactOutcome(
            status=OPTIMAL, value=upper_ii, lower_bound=upper_ii,
            nodes=total, seconds=time.perf_counter() - t0,
            detail=f"heuristic II proven optimal (mii={mii})")
    return ExactOutcome(
        status=TIMEOUT, value=upper_ii, lower_bound=unknown_at,
        nodes=total, seconds=time.perf_counter() - t0,
        detail=f"budget exhausted deciding II {unknown_at}")


def build_modulo_schedule(graph: ModuloGraph, config: MachineConfig,
                          checker: BankChecker, witness: dict, ii: int):
    """Materialize a solver witness as the pipeline engine's
    :class:`~repro.pipeline.scheduler.ModuloSchedule` (the kernel
    emitter consumes it unchanged), with steady-state bank gambles
    marked exactly as ``ModuloScheduler._mark_gambles`` marks them."""
    from ..pipeline.scheduler import ModuloSchedule

    n = len(graph.ops)
    placements = []
    for i in range(n):
        f, pair, unit, beat = witness[i]
        placements.append((f, pair, unit, beat))
    rmii = res_mii(graph.ops, config)
    rcmii = rec_mii(graph, max(ii, rmii) + 1) or 1
    sched = ModuloSchedule(
        ii=ii, mii=max(2, rmii, rcmii), res_mii=rmii, rec_mii=rcmii,
        stages=max(f for f, _p, _u, _b in placements) // ii + 1,
        placements=placements)

    period = 2 * ii
    window = checker.window
    mem = [(i, placements[i][3]) for i in range(n)
           if graph.ops[i].is_memory]
    pairs = 0
    for a, (u, bu) in enumerate(mem):
        for v, bv in mem[a + 1:]:
            diff = bv - bu
            hit = False
            for db in range(1 - window, window):
                if db == 0 or (db - diff) % period:
                    continue
                d = (db - diff) // period
                answer = checker.bank_answer(
                    (u, v, d), modulo_refs_at(graph, u, v, d))
                if answer is Answer.MAYBE:
                    hit = True
                    # the later access of the pair takes the stall
                    sched.gambles.add(v if db > 0 else u)
            if hit:
                pairs += 1
    sched.n_gamble_pairs = pairs
    return sched


# ---------------------------------------------------------------------------
# the strategy


class OptimalScheduler(Scheduler):
    """Third strategy over the unified core: heuristic incumbent first,
    then an exact solve that either certifies it or beats it.

    After :meth:`run`, ``outcome`` holds the :class:`ExactOutcome` (or
    None when the size gate skipped the solve) and ``fallback_reason``
    is set when the returned schedule is the uncertified heuristic one.
    """

    def __init__(self, graph: AcyclicGraph, config: MachineConfig,
                 disambiguator: Disambiguator,
                 options: Optional[SchedulingOptions] = None,
                 tracer=None, trace_id: str = "?",
                 max_nodes: int = DEFAULT_MAX_NODES,
                 gate_nodes: int = DEFAULT_GATE_NODES) -> None:
        super().__init__(graph, config, disambiguator, options)
        self.trace_id = trace_id
        self.tracer = get_tracer(tracer)
        self.max_nodes = max_nodes
        self.gate_nodes = gate_nodes
        self.outcome: Optional[ExactOutcome] = None
        self.fallback_reason: Optional[str] = None

    def run(self):
        from ..trace.scheduler import ListScheduler

        base = ListScheduler(self.graph, self.config, self.disambiguator,
                             self.options, tracer=self.tracer,
                             trace_id=self.trace_id).run()
        counters = self.tracer.counters
        n = len(self.graph.nodes)
        if n > self.gate_nodes:
            self.fallback_reason = \
                f"size gate: {n} nodes > {self.gate_nodes}"
            counters.inc("sched.optimal.gated")
            return base
        checker = BankChecker(self.disambiguator, self.config, self.options)
        self.outcome = exact_trace_schedule(
            self.graph, self.config, self.disambiguator, self.options,
            upper=base.n_instructions, max_nodes=self.max_nodes,
            checker=checker)
        if self.outcome.witness is not None:
            counters.inc("sched.optimal.improved")
            counters.inc("sched.optimal.saved_instructions",
                         base.n_instructions - self.outcome.value)
            return build_trace_schedule(self.graph, checker,
                                        self.outcome.witness)
        if self.outcome.status == OPTIMAL:
            counters.inc("sched.optimal.proved")
        else:
            self.fallback_reason = self.outcome.detail or "budget exhausted"
            counters.inc("sched.optimal.timeout")
        return base
