"""The modulo reservation table.

Same resource model as the trace scheduler's
:class:`~repro.machine.resources.ReservationTable` — functional-unit
slots, per-pair per-beat memory ports, load/store buses (wide transfers
hold a bus two beats), the shared per-pair immediate word, — but keyed
*modulo* the initiation interval: an op at flat instruction ``f`` owns its
resources in every kernel round, so two ops conflict when their slots
collide mod II (buses: beats mod 2*II, with wide holds wrapping).

Unlike the trace table this one supports *release*: the iterative modulo
scheduler evicts and re-places ops, so every placement returns a
:class:`Reservation` recording exactly which keys it took.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine import (MachineConfig, Unit, imm_value, needs_imm_word,
                       units_for)


@dataclass
class Reservation:
    """One op's placement plus the exact resource keys it holds."""

    index: int                    #: rotated-op index
    f: int                        #: flat schedule instruction
    pair: int
    unit: Unit
    beat: int                     #: flat issue beat: 2*f + unit offset
    m: int                        #: f mod II (kernel slot)
    mem_key: tuple | None = None
    bus_kind: str | None = None
    bus_beats: tuple[int, ...] = ()
    imm_key: tuple | None = None
    imm_val: object = None


class ModuloTable:
    """Kernel-periodic resource bookkeeping for one candidate II."""

    def __init__(self, config: MachineConfig, ii: int) -> None:
        self.config = config
        self.ii = ii
        self.units: dict[tuple, int] = {}       # (m, pair, unit) -> op
        self.mem: dict[tuple, int] = {}         # (m, pair, offset) -> op
        self.bus: dict[tuple, list[int]] = {}   # (kind, beat%2ii) -> ops
        self.imm: dict[tuple, list] = {}        # (m, pair, off) -> [val, set]
        self._bus_limit = {"iload": config.n_load_buses,
                           "fload": config.n_load_buses,
                           "store": config.n_store_buses}

    # ------------------------------------------------------------------
    def bus_plan(self, op, issue_beat: int) -> tuple[str, tuple[int, ...]]:
        """(bus kind, occupied beats mod 2*II) for one memory op."""
        from ..ir import RegClass
        wide = op.opcode.name in ("FLOAD", "FLOADS", "FSTORE")
        beats = 2 if wide else 1
        if op.is_store:
            kind, start = "store", issue_beat + 2
        else:
            kind = "fload" if op.dest is not None \
                and op.dest.cls is RegClass.FLT else "iload"
            start = issue_beat + self.config.lat_mem - 2
        period = 2 * self.ii
        return kind, tuple((start + k) % period for k in range(beats))

    # ------------------------------------------------------------------
    def conflicts(self, op, f: int, pair: int, unit: Unit) -> set[int]:
        """Ops whose eviction would free this slot (empty set = free)."""
        m = f % self.ii
        beat = 2 * f + unit.beat_offset
        out: set[int] = set()
        occupant = self.units.get((m, pair, unit))
        if occupant is not None:
            out.add(occupant)
        if op.is_memory:
            occupant = self.mem.get((m, pair, unit.beat_offset))
            if occupant is not None:
                out.add(occupant)
            kind, beats = self.bus_plan(op, beat)
            for b in beats:
                holders = self.bus.get((kind, b), [])
                excess = len(holders) + 1 - self._bus_limit[kind]
                if excess > 0:
                    out.update(holders[:excess])
        if needs_imm_word(op):
            value = imm_value(op)
            current = self.imm.get((m, pair, unit.beat_offset))
            if current is not None and current[0] != value:
                out.update(current[1])
        return out

    def place(self, op, index: int, f: int, pair: int,
              unit: Unit) -> Reservation:
        """Take the slot's resources (the slot must be conflict-free)."""
        m = f % self.ii
        beat = 2 * f + unit.beat_offset
        res = Reservation(index, f, pair, unit, beat, m)
        self.units[(m, pair, unit)] = index
        if op.is_memory:
            res.mem_key = (m, pair, unit.beat_offset)
            self.mem[res.mem_key] = index
            kind, beats = self.bus_plan(op, beat)
            res.bus_kind, res.bus_beats = kind, beats
            for b in beats:
                self.bus.setdefault((kind, b), []).append(index)
        if needs_imm_word(op):
            value = imm_value(op)
            res.imm_key, res.imm_val = (m, pair, unit.beat_offset), value
            entry = self.imm.setdefault(res.imm_key, [value, set()])
            entry[1].add(index)
        return res

    def release(self, res: Reservation) -> None:
        """Give back everything a reservation holds (for eviction)."""
        self.units.pop((res.m, res.pair, res.unit), None)
        if res.mem_key is not None:
            self.mem.pop(res.mem_key, None)
        for b in res.bus_beats:
            holders = self.bus.get((res.bus_kind, b))
            if holders and res.index in holders:
                holders.remove(res.index)
        if res.imm_key is not None:
            entry = self.imm.get(res.imm_key)
            if entry is not None:
                entry[1].discard(res.index)
                if not entry[1]:
                    del self.imm[res.imm_key]
