"""Re-export shim: the modulo reservation table is the unified
:class:`repro.sched.reservation.ReservationModel` in modulo-II keying."""

from __future__ import annotations

from ..sched.reservation import ModuloTable, Reservation

__all__ = ["ModuloTable", "Reservation"]
