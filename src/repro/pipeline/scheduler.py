"""Iterative modulo scheduling (Rau-style) over a loop graph.

A thin strategy over the unified scheduling core: the scheduler searches
initiation intervals upward from ``MII = max(2, ResMII, RecMII)`` (both
bounds from :mod:`repro.sched`).  At each candidate II it places rotated
ops into the modulo view of the unified
:class:`~repro.sched.reservation.ReservationModel` in height order, with
the loop branch pinned at flat beat ``2*(II-1)`` (the predicate read of
the last kernel instruction).  An op with no conflict-free slot is
*force-placed* at the cheapest slot of the next instruction it has not
yet tried, evicting whatever is in the way; eviction plus a per-II
operation budget gives the iterative behaviour its name.

Memory placement legality beyond the reservation table comes from the
shared :class:`~repro.sched.reservation.BankChecker`: two memory ops
whose steady-state issue beats fall within the bank-busy window are
checked at the implied iteration distance.  A provable same-bank
collision (or a same-beat pair without a provable controller split — the
simulator treats that as a compiler bug) makes the slot illegal; an
unprovable one is a *bank gamble*, taken only under
``SchedulingOptions.bank_gamble`` and marked on the schedule so the
simulator can account for the stall risk.

The floor of II = 2 is load-bearing: with a 2-beat instruction, II >= 2
puts successive instances of the *same* memory op at least 8 beats apart,
outside the 4-beat bank-busy window, so self-conflicts never need
checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..disambig import Answer, Disambiguator
from ..errors import PipelineError
from ..machine import MachineConfig, Unit, units_for
from ..sched.core import (MAX_STAGES, ModuloPriority, Scheduler,
                          SchedulingOptions, cycle_free, modulo_deadlines,
                          modulo_heights, order_units, rec_mii)
from ..sched.deps import ModuloGraph
from ..sched.reservation import (ILLEGAL, BankChecker, Reservation,
                                 ReservationModel, res_mii)

#: candidate IIs tried above the MII before the loop is given up
II_SEARCH = 32


@dataclass
class ModuloSchedule:
    """A feasible modulo schedule for one rotated loop iteration."""

    ii: int
    mii: int
    res_mii: int
    rec_mii: int
    stages: int
    #: per rotated-op index: (flat instruction, pair, unit, flat beat)
    placements: list[tuple[int, int, Unit, int]]
    #: rotated-op indices issuing under an unproven bank disambiguation
    gambles: set[int] = field(default_factory=set)
    n_gamble_pairs: int = 0

    def stage_of(self, index: int) -> int:
        return self.placements[index][0] // self.ii

    def slot_of(self, index: int) -> int:
        return self.placements[index][0] % self.ii


class ModuloScheduler(Scheduler):
    """One-shot scheduler for one loop graph (``run()`` once)."""

    def __init__(self, graph: ModuloGraph, config: MachineConfig,
                 disambiguator: Disambiguator,
                 options: Optional[SchedulingOptions] = None) -> None:
        super().__init__(graph, config, disambiguator, options)
        # disambiguation answers depend only on (op, op, iteration
        # distance), never on candidate beats — the checker memoizes
        # them across the whole II search
        self.checker = BankChecker(disambiguator, config, self.options)

    # ------------------------------------------------------------------
    def run(self) -> ModuloSchedule:
        g = self.graph
        for op in g.ops:
            if not units_for(op):
                raise PipelineError(
                    f"{op.opcode.name} has no functional unit")
        rmii = res_mii(g.ops, self.config)
        hi = rmii + II_SEARCH
        rcmii = rec_mii(g, hi)
        if rcmii is None:
            raise PipelineError(
                f"recurrence MII exceeds {hi} (latency-bound cycle)")
        mii = max(2, rmii, rcmii)
        for ii in range(mii, mii + II_SEARCH + 1):
            sched = self._try_ii(ii, mii, rmii, rcmii)
            if sched is not None:
                return sched
        raise PipelineError(
            f"no feasible II in [{mii}, {mii + II_SEARCH}]")

    # ------------------------------------------------------------------
    def _try_ii(self, ii: int, mii: int, rmii: int,
                rcmii: int) -> ModuloSchedule | None:
        g = self.graph
        n = len(g.ops)
        if not cycle_free(g, ii):
            return None
        dl = modulo_deadlines(g, ii)
        if dl is None:
            return None
        h = modulo_heights(g, ii)
        if h is None:
            return None
        priority = ModuloPriority(self.options.params, h, dl)
        order = priority.order()
        mrt = ReservationModel(self.config, ii)
        placed: dict[int, Reservation] = {}
        prev_f = [-1] * n
        budget = priority.budget()
        while len(placed) < n:
            if budget <= 0:
                return None
            budget -= 1
            u = next(i for i in order if i not in placed)
            estart = 0
            for e in g.preds[u]:
                if e.src == u or e.src not in placed:
                    continue
                estart = max(estart, placed[e.src].beat
                             + e.latency - 2 * ii * e.dist)
            if estart > dl[u]:
                return None
            res = self._place_free(mrt, placed, u, estart, dl[u], ii)
            if res is None:
                res = self._place_forced(mrt, placed, u, estart, dl[u],
                                         prev_f, ii)
                if res is None:
                    return None
            placed[u] = res
            self._evict_violators(mrt, placed, u, ii)
        stages = max(r.f for r in placed.values()) // ii + 1
        if stages > MAX_STAGES:       # deadlines cap this already; belt
            return None
        sched = ModuloSchedule(
            ii=ii, mii=mii, res_mii=rmii, rec_mii=rcmii, stages=stages,
            placements=[(placed[i].f, placed[i].pair, placed[i].unit,
                         placed[i].beat) for i in range(n)])
        self._mark_gambles(sched, placed, ii)
        return sched

    # -- placement ------------------------------------------------------
    def _place_free(self, mrt: ReservationModel, placed: dict, u: int,
                    estart: int, deadline: int,
                    ii: int) -> Reservation | None:
        """Earliest conflict-free slot with beat in [estart, deadline]."""
        op = self.graph.ops[u]
        f_lo = max(0, estart // 2)
        # f_lo .. f_lo+II covers every modulo slot at least once with an
        # in-range beat (the extra +1 catches the slot whose f_lo beat
        # lands just below estart)
        units = order_units(units_for(op), self.options.params)
        for f in range(f_lo, f_lo + ii + 1):
            beat_ok: dict[int, bool] = {}
            for unit in units:
                beat = 2 * f + unit.beat_offset
                if beat < estart or beat > deadline:
                    continue
                if op.is_memory:
                    off = unit.beat_offset
                    if off not in beat_ok:
                        beat_ok[off] = not self._mem_conflicts(
                            placed, u, beat, ii)
                    if not beat_ok[off]:
                        continue
                for pair in range(self.config.n_pairs):
                    if not mrt.conflicts(op, f, pair, unit):
                        return mrt.place(op, u, f, pair, unit)
        return None

    def _place_forced(self, mrt: ReservationModel, placed: dict, u: int,
                      estart: int, deadline: int, prev_f: list[int],
                      ii: int) -> Reservation | None:
        """Take a slot by eviction, one instruction past the last try."""
        g = self.graph
        op = g.ops[u]
        f = max(max(0, estart // 2), prev_f[u] + 1)
        units = order_units(units_for(op), self.options.params)
        while 2 * f <= deadline:
            best = None
            for unit in units:
                beat = 2 * f + unit.beat_offset
                if beat < estart or beat > deadline:
                    continue
                mem_evict = self._mem_conflicts(placed, u, beat, ii) \
                    if op.is_memory else set()
                for pair in range(self.config.n_pairs):
                    evict = mrt.conflicts(op, f, pair, unit) | mem_evict
                    if best is None or len(evict) < len(best[2]):
                        best = (unit, pair, evict)
            if best is not None:
                prev_f[u] = f
                unit, pair, evict = best
                for victim in evict:
                    mrt.release(placed.pop(victim))
                return mrt.place(op, u, f, pair, unit)
            f += 1
        return None

    def _evict_violators(self, mrt: ReservationModel, placed: dict, u: int,
                         ii: int) -> None:
        """Unplace neighbours whose distance constraint ``u`` now breaks."""
        g = self.graph
        n = len(g.ops)
        bu = placed[u].beat
        for e in g.succs[u]:
            if e.dst >= n or e.dst == u or e.dst not in placed:
                continue
            if bu + e.latency > placed[e.dst].beat + 2 * ii * e.dist:
                mrt.release(placed.pop(e.dst))
        for e in g.preds[u]:
            if e.src == u or e.src not in placed:
                continue
            if placed[e.src].beat + e.latency > bu + 2 * ii * e.dist:
                mrt.release(placed.pop(e.src))

    # -- memory-bank legality ------------------------------------------
    def _mem_conflicts(self, placed: dict, u: int, beat_u: int,
                       ii: int) -> set[int]:
        """Placed memory ops that make issuing ``u`` at this beat illegal."""
        out: set[int] = set()
        for v, rv in placed.items():
            if v == u or not self.graph.ops[v].is_memory:
                continue
            if not self._pair_legal(u, beat_u, v, rv.beat, ii):
                out.add(v)
        return out

    def _pair_legal(self, u: int, bu: int, v: int, bv: int,
                    ii: int) -> bool:
        period = 2 * ii
        diff = bv - bu
        window = self.checker.window
        for db in range(1 - window, window):
            if (db - diff) % period:
                continue
            d = (db - diff) // period
            verdict = self.checker.check((u, v, d), self._refs_at(u, v, d),
                                         db == 0)
            if verdict == ILLEGAL:
                return False
        return True

    def _refs_at(self, u: int, v: int, d: int):
        g = self.graph
        if d == 0:
            ru, rv = g.ops[u].memref, g.ops[v].memref
        else:
            ru, rv = g.shiftable_ref(u), g.shifted_ref(v, d)
        if ru is None or rv is None:
            return None
        return ru, rv

    def _mark_gambles(self, sched: ModuloSchedule, placed: dict,
                      ii: int) -> None:
        """Flag the ops whose steady-state bank proximity is unproven."""
        g = self.graph
        mem = [(i, r) for i, r in placed.items() if g.ops[i].is_memory]
        period = 2 * ii
        window = self.checker.window
        pairs = 0
        for a, (u, ru) in enumerate(mem):
            for v, rv in mem[a + 1:]:
                diff = rv.beat - ru.beat
                hit = False
                for db in range(1 - window, window):
                    if db == 0 or (db - diff) % period:
                        continue
                    d = (db - diff) // period
                    answer = self.checker.bank_answer(
                        (u, v, d), self._refs_at(u, v, d))
                    if answer is Answer.MAYBE:
                        hit = True
                        # the later access of the pair takes the stall
                        sched.gambles.add(v if db > 0 else u)
                if hit:
                    pairs += 1
        sched.n_gamble_pairs = pairs
