"""Kernel/prologue/epilogue emission with modulo variable expansion.

The flat modulo schedule places rotated op ``i`` at flat instruction
``f_i`` (stage ``f_i // II``, kernel slot ``f_i % II``).  Execution is a
sequence of *rounds* of II instructions: round ``r`` runs op ``i`` for
iteration ``r - stage_i``.  The emitted layout:

``guard``     clone of the loop header testing ``iv + (S-1)*step`` —
              guarantees at least S trips, otherwise branches to the
              original (rolled, trace-scheduled) loop.
``preload``   when MVE renames registers: seed the rename slot that
              iteration 0's cross-iteration reads will consult with the
              architectural (loop-entry) value.
``prologue``  rounds 0..S-2, filling the pipeline.  No branches: the
              guard already proved these iterations all run.
``kernels``   K copies of the steady-state round (K = MVE degree);
              copy ``c``'s branch continues to copy ``(c+1) % K`` and
              falls through to its own epilogue.
``epilogues`` per kernel copy: rounds draining stages 1..S-1, padding
              until every in-flight result has landed, move-fixups
              restoring architectural register names, then a jump back
              to the original header — whose (now false) exit test
              routes to the loop's real exit with all live-outs intact.

Modulo variable expansion: with K kernel copies, iteration ``j`` writes
rename slot ``j % K`` of every loop-defined register, and a reader at
iteration distance ``d`` reads slot ``(j - d) % K``.  K is the smallest
count such that a value is never clobbered (write of iteration ``j+K``)
before its last read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Imm, Opcode, Operation, RegClass, VReg, wrap32
from ..machine import (BranchTest, LongInstruction, MachineConfig,
                       ReservationTable, ScheduledOp, imm_value, latency_of,
                       needs_imm_word, units_for)
from .depgraph import LoopGraph
from .scheduler import ModuloSchedule
from .shape import PipelineLoop


@dataclass
class EmittedPipeline:
    """The pipelined loop as a relocatable instruction run."""

    instructions: list[LongInstruction]
    #: label -> index relative to ``instructions[0]``
    labels: dict[str, int]
    guard_label: str
    kernel_copies: int
    #: registers invented by MVE/guard emission (for diagnostics)
    new_regs: int = 0


def _mov_for(cls: RegClass) -> Opcode:
    if cls is RegClass.FLT:
        return Opcode.FMOV
    if cls is RegClass.PRED:
        return Opcode.PMOV
    return Opcode.MOV


class _Packer:
    """Tiny greedy scheduler for the scalar sections (guard/preload/fixups).

    These sections execute once per loop entry/exit, so density barely
    matters — but result latencies must still be honored, and unit/imm
    slots must not be oversubscribed.  No memory ops ever pass through
    here (the guard is pure by the shape check; preload/fixups are moves).
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.table = ReservationTable(config)
        self.rows: list[LongInstruction] = []
        self.land: dict[VReg, int] = {}   # def -> section-relative land beat
        self.max_land = 0

    def _grow(self, t: int) -> None:
        while len(self.rows) <= t:
            self.rows.append(LongInstruction())

    def add(self, op: Operation) -> None:
        t = 0
        for src in op.reg_srcs():
            if src in self.land:              # read beat 2t >= land beat
                t = max(t, -(-self.land[src] // 2))
        while self._try_row(op, t) is None:
            t += 1

    def _try_row(self, op: Operation, t: int) -> ScheduledOp | None:
        for unit in units_for(op):
            for pair in range(self.config.n_pairs):
                if not self.table.unit_free(t, pair, unit):
                    continue
                if needs_imm_word(op) and not self.table.imm_free(
                        t, pair, unit.beat_offset, imm_value(op)):
                    continue
                self.table.take_unit(t, pair, unit)
                if needs_imm_word(op):
                    self.table.take_imm(t, pair, unit.beat_offset,
                                        imm_value(op))
                self._grow(t)
                sop = ScheduledOp(op, pair, unit)
                self.rows[t].ops.append(sop)
                if op.dest is not None:
                    land = 2 * t + unit.beat_offset \
                        + latency_of(op, self.config)
                    self.land[op.dest] = land
                    self.max_land = max(self.max_land, land)
                return sop
        return None

    def finish(self, drain: bool = True) -> list[LongInstruction]:
        """The packed rows, padded (if ``drain``) until all lands complete."""
        if drain and self.max_land > 0:
            self._grow(-(-self.max_land // 2) - 1)
        return self.rows


def emit_pipeline(func, pl: PipelineLoop, graph: LoopGraph,
                  sched: ModuloSchedule,
                  config: MachineConfig) -> EmittedPipeline:
    ii, S = sched.ii, sched.stages
    period = 2 * ii
    ops = graph.ops
    n = len(ops)
    lat = [latency_of(op, config) for op in ops]
    stage = [sched.stage_of(i) for i in range(n)]
    slot = [sched.slot_of(i) for i in range(n)]
    beat = [sched.placements[i][3] for i in range(n)]

    # --- MVE degree: slot j+K's write must land after j's last read ------
    last_read: dict[int, int] = {}
    for e in graph.edges:
        if e.kind == "mem":
            continue
        rb = 2 * (ii - 1) if e.dst == graph.branch \
            else beat[e.dst] + period * e.dist
        last_read[e.src] = max(last_read.get(e.src, -1), rb)
    K = 1
    for i, op in enumerate(ops):
        if op.dest is None or i not in last_read:
            continue
        need = -(-(last_read[i] + 1 - (beat[i] + lat[i])) // period)
        K = max(K, need)

    name_map: dict[VReg, list[VReg]] = {}
    if K > 1:
        for op in ops:
            if op.dest is not None:
                name_map[op.dest] = [
                    func.fresh_vreg(op.dest.cls, f"{op.dest.name}.mv{k}")
                    for k in range(K)]

    defs_at = graph.defs_at

    def reg_name(reg: VReg, j: int) -> VReg:
        names = name_map.get(reg)
        return reg if names is None else names[j % K]

    def instance(i: int, j: int) -> ScheduledOp:
        """Rotated op ``i`` as executed by iteration ``j``."""
        src_op = ops[i]
        op = src_op.copy()
        if op.dest is not None and op.dest in name_map:
            op.rename_dest(name_map[op.dest][j % K])
        for src in set(src_op.reg_srcs()):
            if src in name_map:
                delta = 0 if defs_at[src] < i else 1
                op.replace_src(src, name_map[src][(j - delta) % K])
        _f, pair, unit, _b = sched.placements[i]
        bus = None
        if op.is_memory:
            bus = ("store" if op.is_store else
                   "fload" if op.dest is not None
                   and op.dest.cls is RegClass.FLT else "iload")
        return ScheduledOp(op, pair, unit, bus, i in sched.gambles)

    by_slot: list[list[int]] = [[] for _ in range(ii)]
    for i in range(n):
        by_slot[slot[i]].append(i)

    def round_instrs(include, iteration_of) -> list[LongInstruction]:
        out = []
        for m in range(ii):
            li = LongInstruction()
            for i in by_slot[m]:
                if include(i):
                    li.ops.append(instance(i, iteration_of(i)))
            out.append(li)
        return out

    instrs: list[LongInstruction] = []
    labels: dict[str, int] = {}
    guard_label = f"{pl.header}.pipe"
    new_regs = sum(len(v) for v in name_map.values())

    # --- guard: at least S trips, or bail to the rolled loop -------------
    labels[guard_label] = 0
    primary = pl.primary.reg
    packer = _Packer(config)
    probe = func.fresh_vreg(primary.cls, f"{primary.name}.pp")
    new_regs += 1
    packer.add(Operation(Opcode.ADD, probe,
                         [primary, Imm(wrap32((S - 1) * pl.step))]))
    g_rename: dict[VReg, VReg] = {}
    for op in pl.head_ops:
        cp = op.copy()
        cp.replace_src(primary, probe)
        for old, new in g_rename.items():
            cp.replace_src(old, new)
        if cp.dest is not None:
            fresh = func.fresh_vreg(cp.dest.cls, f"{cp.dest.name}.pg")
            new_regs += 1
            g_rename[cp.dest] = fresh
            cp.rename_dest(fresh)
        packer.add(cp)
    g_pred = g_rename[pl.pred]
    rows = packer.finish(drain=False)
    t_br = -(-packer.land[g_pred] // 2)   # branch reads pred at beat 2t
    while len(rows) <= t_br:
        rows.append(LongInstruction())
    rows[t_br].branches.append(BranchTest(g_pred, pl.header, 0, True))
    instrs += rows

    # --- preload: seed slot K-1 for iteration 0's distance-1 reads -------
    if K > 1:
        carried = set()
        for i, op in enumerate(ops):
            for src in op.reg_srcs():
                if src in name_map and defs_at[src] >= i:
                    carried.add(src)
        pre = _Packer(config)
        for v in sorted(carried, key=lambda r: r.name):
            pre.add(Operation(_mov_for(v.cls), name_map[v][K - 1], [v]))
        instrs += pre.finish(drain=True)

    # --- prologue: rounds 0..S-2 fill the pipeline -----------------------
    for r in range(S - 1):
        instrs += round_instrs(lambda i, r=r: stage[i] <= r,
                               lambda i, r=r: r - stage[i])

    # --- K kernel copies -------------------------------------------------
    kern_labels = [f"{guard_label}.k{c}" for c in range(K)]
    epi_labels = [f"{guard_label}.e{c}" for c in range(K)]
    for c in range(K):
        labels[kern_labels[c]] = len(instrs)
        base_round = S - 1 + c
        rows = round_instrs(lambda i: True,
                            lambda i, r=base_round: r - stage[i])
        rows[-1].branches.append(BranchTest(
            reg_name(pl.pred, base_round), kern_labels[(c + 1) % K],
            0, False))
        rows[-1].next_label = epi_labels[c]
        instrs += rows

    # --- per-copy epilogues ----------------------------------------------
    # relative to epilogue start, op i's final instance lands at
    # beat[i] + lat[i] - 2*II (its last round is the one just finished for
    # stage 0, or drain round ``stage_i`` for deeper stages — same formula)
    drain_land = max((beat[i] + lat[i] for i in range(n)
                      if ops[i].dest is not None), default=0) - period
    drain_rows = max(-(-drain_land // 2), 0)
    fix_regs = [v for v in sorted(name_map, key=lambda r: r.name)
                if v in pl.live_out or v in pl.live_in_header]
    for c in range(K):
        labels[epi_labels[c]] = len(instrs)
        base_round = S - 1 + c
        rows = []
        for e in range(1, S):
            rows += round_instrs(
                lambda i, e=e: stage[i] >= e,
                lambda i, r=base_round, e=e: r + e - stage[i])
        while len(rows) < drain_rows:
            rows.append(LongInstruction())
        if fix_regs:
            fix = _Packer(config)
            for v in fix_regs:
                fix.add(Operation(_mov_for(v.cls), v,
                                  [name_map[v][base_round % K]]))
            rows += fix.finish(drain=True)
        if not rows:
            rows.append(LongInstruction())
        rows[-1].next_label = pl.header
        instrs += rows

    return EmittedPipeline(instructions=instrs, labels=labels,
                           guard_label=guard_label, kernel_copies=K,
                           new_regs=new_regs)
