"""Per-loop software-pipelining statistics.

Attached to :class:`repro.trace.TraceCompileStats.pipelined_loops` by the
compiler and surfaced through ``repro measure``/``repro stats`` and the
benchmark harness — achieved II versus the MII bound is the headline
quality metric for the modulo scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PipelinedLoopStats:
    """One successfully pipelined loop."""

    header: str
    ii: int
    mii: int
    res_mii: int
    rec_mii: int
    stages: int
    kernel_copies: int
    #: rotated ops per iteration (the work the kernel retires per II)
    n_ops: int
    #: instructions the pipelined region added to the function
    n_instructions: int
    #: ops issued under an unproven bank disambiguation
    gambles: int
    #: the trace scheduler's steady-state instructions/iteration for the
    #: same loop (None when the probe failed or was skipped)
    trace_estimate: int | None = None
    #: why this engine won: "pipeline" (forced), "auto-ii" (II beat the
    #: trace estimate), ...
    decision: str = "pipeline"

    def row(self) -> dict:
        return {
            "header": self.header, "ii": self.ii, "mii": self.mii,
            "res_mii": self.res_mii, "rec_mii": self.rec_mii,
            "stages": self.stages, "kernel_copies": self.kernel_copies,
            "n_ops": self.n_ops, "gambles": self.gambles,
            "trace_estimate": self.trace_estimate,
            "decision": self.decision,
        }
