"""Re-export shim: MII bounds and modulo orderings now live in the
unified scheduling core (:mod:`repro.sched.core` for the Bellman-Ford
utilities, :mod:`repro.sched.reservation` for ResMII)."""

from __future__ import annotations

from ..sched.core import MAX_STAGES, rec_mii
from ..sched.core import cycle_free as _cycle_free
from ..sched.core import modulo_deadlines as deadlines
from ..sched.core import modulo_heights as heights
from ..sched.reservation import res_mii

__all__ = ["MAX_STAGES", "_cycle_free", "deadlines", "heights", "rec_mii",
           "res_mii"]
