"""Minimum initiation interval bounds and modulo-schedule orderings.

ResMII counts the machine resources one iteration consumes against what
one kernel instruction supplies (paper section 5's per-pair functional
units, the per-pair per-beat memory ports, and the load/store buses —
wide ops hold a bus two beats).  RecMII is the recurrence bound: at
initiation interval II, every dependence cycle must satisfy
``sum(latency) <= 2 * II * sum(dist)`` (a kernel instruction is 2 beats),
checked as Bellman-Ford positive-cycle detection with edge weights
``latency - 2*II*dist``.
"""

from __future__ import annotations

import math

from ..ir import Opcode, RegClass
from ..machine import MachineConfig
from .depgraph import LoopGraph

#: flat schedules deeper than this are rejected (prologue/epilogue code
#: growth is linear in the stage count; past this the transform cannot pay)
MAX_STAGES = 8

#: categories restricted to the integer ALUs (4 per pair)
_IALU_ONLY = {"int_cmp", "int_mul", "int_div", "load", "store"}
#: categories restricted to the F-board adder (1 per pair)
_FALU_ONLY = {"flt_add", "flt_cmp", "cvt"}
#: categories restricted to the F-board multiplier (1 per pair)
_FMUL_ONLY = {"flt_mul", "flt_div"}

#: memory ops whose bus transfer holds the bus for two beats
_WIDE = {Opcode.FLOAD, Opcode.FLOADS, Opcode.FSTORE}


def res_mii(ops, config: MachineConfig) -> int:
    """Resource-constrained lower bound on II, in instructions."""
    pairs = config.n_pairs
    ialu = falu = fmul = flexible = n_mem = 0
    bus_beats = {"iload": 0, "fload": 0, "store": 0}
    for op in ops:
        cat = op.category.value
        if cat in _IALU_ONLY:
            ialu += 1
        elif cat in _FALU_ONLY:
            falu += 1
        elif cat in _FMUL_ONLY:
            fmul += 1
        else:
            flexible += 1
        if op.is_memory:
            n_mem += 1
            beats = 2 if op.opcode in _WIDE else 1
            if op.is_store:
                bus_beats["store"] += beats
            elif op.dest is not None and op.dest.cls is RegClass.FLT:
                bus_beats["fload"] += beats
            else:
                bus_beats["iload"] += beats
    bound = max(
        math.ceil(ialu / (4 * pairs)),
        math.ceil(falu / pairs),
        math.ceil(fmul / pairs),
        math.ceil((ialu + falu + fmul + flexible) / (6 * pairs)),
        # one memory port per pair per beat, 2 beats per instruction
        math.ceil(n_mem / (2 * pairs)),
        math.ceil(bus_beats["iload"] / (2 * config.n_load_buses)),
        math.ceil(bus_beats["fload"] / (2 * config.n_load_buses)),
        math.ceil(bus_beats["store"] / (2 * config.n_store_buses)),
    )
    return max(1, bound)


def _cycle_free(graph: LoopGraph, ii: int) -> bool:
    """No positive-weight cycle under weights ``latency - 2*II*dist``."""
    n = len(graph.ops)
    dist = [0] * n
    for round_ in range(n + 1):
        changed = False
        for e in graph.edges:
            if e.dst >= n:          # edges into the branch never cycle
                continue
            w = e.latency - 2 * ii * e.dist
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                changed = True
        if not changed:
            return True
    return False


def rec_mii(graph: LoopGraph, hi: int) -> int | None:
    """Smallest II in [1, hi] with no positive cycle, or None."""
    if _cycle_free(graph, hi):
        lo, top = 1, hi
        while lo < top:             # feasibility is monotone in II
            mid = (lo + top) // 2
            if _cycle_free(graph, mid):
                top = mid
            else:
                lo = mid + 1
        return lo
    return None


def heights(graph: LoopGraph, ii: int) -> list[int] | None:
    """Priority heights: longest latency-path to any sink at this II."""
    n = len(graph.ops)
    h = [0] * (n + 1)
    for round_ in range(n + 2):
        changed = False
        for e in graph.edges:
            w = e.latency - 2 * ii * e.dist
            if h[e.dst] + w > h[e.src]:
                h[e.src] = h[e.dst] + w
                changed = True
        if not changed:
            return h[:n]
    return None                     # positive cycle (caller screens first)


def deadlines(graph: LoopGraph, ii: int) -> list[int] | None:
    """Latest legal issue beat per op, or None when II is infeasible.

    The loop branch is pinned at flat beat ``2*(II-1)`` (last slot of
    stage 0) and reads its predicate at that beat; deadlines relax
    backward from it.  Unconstrained ops are capped by the stage limit.
    """
    n = len(graph.ops)
    cap = 2 * ii * MAX_STAGES - 1
    dl = [cap] * (n + 1)
    dl[graph.branch] = 2 * (ii - 1)
    for round_ in range(n + 2):
        changed = False
        for e in graph.edges:
            limit = dl[e.dst] - e.latency + 2 * ii * e.dist
            if limit < dl[e.src]:
                dl[e.src] = limit
                changed = True
        if not changed:
            break
    else:
        return None
    if any(d < 0 for d in dl[:n]):
        return None
    return dl[:n]
