"""Software pipelining: a modulo scheduler as a second loop engine.

The trace compiler's default treatment of a hot loop is unroll-and-trace-
schedule (paper section 4).  This package implements the alternative the
paper's successors explored: *software pipelining* innermost counted
loops with an iterative modulo scheduler, overlapping iterations at a
fixed initiation interval (II) instead of compacting an unrolled body.

Pipeline of responsibilities:

* :mod:`~repro.pipeline.shape` — match the canonical counted loop and
  rotate its body into one straight-line iteration.
* :mod:`~repro.pipeline.depgraph` — distance-annotated dependences,
  memory edges via the disambiguator.
* :mod:`~repro.pipeline.mii` — ResMII/RecMII lower bounds, priority
  heights, branch-pinned deadlines.
* :mod:`~repro.pipeline.scheduler` — iterative modulo scheduling into a
  :mod:`~repro.pipeline.mrt` modulo reservation table.
* :mod:`~repro.pipeline.emit` — guard/prologue/kernel/epilogue emission
  with modulo variable expansion.

The trace compiler (``strategy="pipeline"`` / ``"auto"``) drives this
per loop and falls back to trace scheduling whenever a stage raises
:class:`~repro.errors.PipelineError` or the shape match fails.
"""

from .depgraph import MAX_DIST, LoopDep, LoopGraph, build_loop_graph
from .emit import EmittedPipeline, emit_pipeline
from .mii import MAX_STAGES, deadlines, heights, rec_mii, res_mii
from .mrt import ModuloTable, Reservation
from .scheduler import II_SEARCH, ModuloSchedule, ModuloScheduler
from .shape import (MAX_LOOP_OPS, PipelineLoop, find_pipeline_loops,
                    loop_shape_tag, match_pipeline_loop)
from .stats import PipelinedLoopStats

__all__ = [
    "MAX_DIST", "MAX_LOOP_OPS", "MAX_STAGES", "II_SEARCH",
    "LoopDep", "LoopGraph", "build_loop_graph",
    "EmittedPipeline", "emit_pipeline",
    "deadlines", "heights", "rec_mii", "res_mii",
    "ModuloTable", "Reservation",
    "ModuloSchedule", "ModuloScheduler",
    "PipelineLoop", "find_pipeline_loops", "loop_shape_tag",
    "match_pipeline_loop",
    "PipelinedLoopStats",
]
