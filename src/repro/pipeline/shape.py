"""Loop-shape matching for the modulo scheduler.

The pipeliner handles the same canonical counted loop the unroller targets
(``head: p = cmp(iv, bound); br p, body, exit`` / ``body: ...; iv += step;
jmp head``), but with stricter requirements: the loop body is *rotated*
into a straight-line iteration — work ops, then the induction updates,
then the header ops recomputing the exit test for the **next** iteration —
and every register must have exactly one definition per iteration so
cross-iteration distances are well defined.

A match produces a :class:`PipelineLoop` carrying the rotated op list and
everything the dependence graph, scheduler, and emitter need.  A miss
produces a human-readable reason, recorded on
``TraceCompileStats.pipeline_fallbacks`` so strategy decisions stay
observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import (BasicIV, Loop, compute_liveness, find_basic_ivs,
                        find_loops, match_counted_loop)
from ..ir import Function, Imm, Opcode, Operation, VReg

#: Compares usable as a pipeline guard, keyed by (opcode, iv_operand_index):
#: the continue-condition must become monotonically harder to satisfy as
#: the IV advances (same tables as the unroller — both transform the trip
#: test into "do at least k more iterations?").
_GUARDS_POS_STEP = {(Opcode.CMPLT, 0), (Opcode.CMPLE, 0),
                    (Opcode.CMPGT, 1), (Opcode.CMPGE, 1)}
_GUARDS_NEG_STEP = {(Opcode.CMPGT, 0), (Opcode.CMPGE, 0),
                    (Opcode.CMPLT, 1), (Opcode.CMPLE, 1)}

#: rotated iterations larger than this are left to the trace scheduler
MAX_LOOP_OPS = 120


@dataclass
class PipelineLoop:
    """One pipelinable loop, rotated and classified."""

    header: str
    body: str
    exit: str
    #: the trip-count IV (drives the guard)
    primary: BasicIV
    #: every basic IV's step, keyed by register
    steps: dict[VReg, int]
    #: the header's compare feeding the loop branch
    compare: Operation
    #: the branch predicate (the compare's destination)
    pred: VReg
    #: one rotated iteration: body work ops, IV updates, header ops (the
    #: header ops read the post-update IV, i.e. they compute the *next*
    #: iteration's exit test — exactly what the kernel branch needs)
    rot_ops: list[Operation]
    #: header-body ops alone (cloned into the trip-count guard)
    head_ops: list[Operation]
    #: registers live into the header (loop-carried values, incl. IVs)
    live_in_header: set[VReg] = field(default_factory=set)
    #: registers live into the exit block
    live_out: set[VReg] = field(default_factory=set)

    @property
    def step(self) -> int:
        return self.primary.step


def _trip_structure(func: Function, loop: Loop, ivs: dict):
    """(iv, compare, exit block, guarded register) for the trip test.

    Beyond the canonical ``cmp(iv, bound)`` recognised by
    :func:`match_counted_loop`, this accepts a header temp ``probe =
    iv +/- const`` as the compared register — the shape the unroller's
    probe guard leaves behind.  The probe advances in lockstep with the
    IV, so guard direction and trip arithmetic carry over unchanged, and
    pipelining an unrolled loop retires several source iterations per II.
    """
    tc = match_counted_loop(func, loop)
    if tc is not None:
        return tc.iv, tc.compare_op, tc.exit_block, tc.iv.reg
    header = func.block(loop.header)
    term = header.terminator
    if term is None or term.opcode is not Opcode.BR:
        return None
    then_name, else_name = (lbl.name for lbl in term.labels)
    if then_name in loop.body and else_name not in loop.body:
        exit_block = else_name
    elif else_name in loop.body and then_name not in loop.body:
        exit_block = then_name
    else:
        return None
    pred = term.srcs[0]
    if not isinstance(pred, VReg):
        return None
    compare = None
    for op in header.body:
        if op.dest == pred:
            compare = op
    if compare is None or compare.category.value != "int_cmp":
        return None
    head_defs = {op.dest: op for op in header.body if op.dest is not None}
    for src in compare.reg_srcs():
        probe_op = head_defs.get(src)
        if probe_op is None or len(probe_op.srcs) != 2:
            continue
        if probe_op.opcode is Opcode.ADD:
            views = [(probe_op.srcs[0], probe_op.srcs[1]),
                     (probe_op.srcs[1], probe_op.srcs[0])]
        elif probe_op.opcode is Opcode.SUB:
            views = [(probe_op.srcs[0], probe_op.srcs[1])]
        else:
            continue
        for base, offset in views:
            if isinstance(base, VReg) and base in ivs \
                    and isinstance(offset, Imm):
                return ivs[base], compare, exit_block, src
    return None


def match_pipeline_loop(
        func: Function, loop: Loop,
        live_in_map: dict[str, set[VReg]]
) -> tuple[PipelineLoop | None, str]:
    """Match one loop against the pipelinable shape: (loop, reason)."""
    if loop.children:
        return None, "not an innermost loop"
    if len(loop.body) != 2 or len(loop.latches) != 1:
        return None, "not a two-block counted loop"
    header = loop.header
    body_name = loop.latches[0]
    if body_name == header:
        return None, "single-block loop"
    if header == func.entry.name:
        return None, "loop header is the function entry"
    ivs = find_basic_ivs(func, loop)
    trip = _trip_structure(func, loop, {iv.reg: iv for iv in ivs})
    if trip is None:
        return None, "no counted-loop trip structure"
    t_iv, compare, exit_block, guard_reg = trip
    head = func.block(header)
    body = func.block(body_name)
    term = body.terminator
    if term is None or term.opcode is not Opcode.JMP \
            or term.labels[0].name != header:
        return None, "latch does not jump straight back to the header"
    if head.terminator.labels[0].name != body_name:
        return None, "header branch continues on its false edge"
    if any(op.is_call for op in body.body):
        return None, "call in the loop body"
    if any(op.is_memory or op.is_call or op.has_side_effect or op.can_trap
           for op in head.body):
        return None, "header body is not pure"

    steps = {iv.reg: iv.step for iv in ivs}
    updates = {iv.reg: iv.update_op for iv in ivs}
    primary = t_iv.reg
    step = steps.get(primary, 0)
    if step == 0:
        return None, "zero-step induction variable"

    iv_index = next(
        (i for i, s in enumerate(compare.srcs) if s == guard_reg), None)
    if iv_index is None:
        return None, "compare does not read the induction variable"
    guards = _GUARDS_POS_STEP if step > 0 else _GUARDS_NEG_STEP
    if (compare.opcode, iv_index) not in guards:
        return None, "unsupported guard direction"
    bound = compare.srcs[1 - iv_index]

    defined = {op.dest for bname in loop.body
               for op in func.block(bname).ops if op.dest is not None}
    if isinstance(bound, VReg) and bound in defined:
        return None, "loop bound is defined inside the loop"

    # every IV update lives in the body, and nothing reads an IV after its
    # update (the rotation moves all updates after the work ops)
    for reg, update in updates.items():
        if update not in body.ops:
            return None, "induction update outside the latch block"
        idx = body.ops.index(update)
        for later in body.ops[idx + 1:]:
            if reg in later.reg_srcs():
                return None, "induction variable read after its update"

    # the guard clones the header with the IV replaced by a probe, so the
    # header may only read the primary IV, its own temps, and invariants
    head_defs = {op.dest for op in head.body if op.dest is not None}
    for op in head.body:
        for src in op.reg_srcs():
            if src == primary or src in head_defs:
                continue
            if src in defined:
                return None, (f"header reads loop-varying register "
                              f"{src.name}")
    # header temps are recomputed one iteration ahead in the rotation;
    # the body reading them would see next-iteration values
    for op in body.ops:
        if any(src in head_defs for src in op.reg_srcs()):
            return None, "loop body reads a header-defined register"

    rot = [op for op in body.body if op not in updates.values()]
    rot += list(updates.values())
    rot += list(head.body)
    if len(rot) > MAX_LOOP_OPS:
        return None, f"loop too large to pipeline ({len(rot)} ops)"
    if any(op.is_branch or op.is_terminator for op in rot):
        return None, "control flow inside the loop body"

    defs_at: dict[VReg, int] = {}
    for i, op in enumerate(rot):
        if op.dest is not None:
            if op.dest in defs_at:
                return None, (f"register {op.dest.name} defined more "
                              f"than once per iteration")
            defs_at[op.dest] = i

    live_in_header = set(live_in_map.get(header, ()))
    # a cross-iteration read (use before the def in rotated order) needs a
    # well-defined entry value: the register must be live into the header
    for i, op in enumerate(rot):
        for src in op.reg_srcs():
            d = defs_at.get(src)
            if d is not None and d >= i and src not in live_in_header:
                return None, (f"cross-iteration read of {src.name}, "
                              f"which is not live into the header")

    pl = PipelineLoop(
        header=header, body=body_name, exit=exit_block,
        primary=t_iv, steps=steps, compare=compare,
        pred=compare.dest, rot_ops=rot, head_ops=list(head.body),
        live_in_header=live_in_header,
        live_out=set(live_in_map.get(exit_block, ())))
    return pl, "ok"


def find_pipeline_loops(
        func: Function,
        live_in_map: dict[str, set[VReg]] | None = None
) -> list[tuple[Loop, PipelineLoop | None, str]]:
    """Every innermost loop with its match result (loop, match, reason)."""
    if live_in_map is None:
        live_in_map = dict(compute_liveness(func).live_in)
    out = []
    for loop in find_loops(func):
        if loop.children:
            continue
        pl, why = match_pipeline_loop(func, loop, live_in_map)
        out.append((loop, pl, why))
    return out


def loop_shape_tag(func: Function) -> str:
    """One-word loop-shape classification for ``repro list``.

    ``pipelinable`` — at least one innermost loop matches the modulo
    scheduler's shape; ``loops`` — has loops, none pipelinable;
    ``acyclic`` — no loops at all.
    """
    matches = find_pipeline_loops(func)
    if not matches:
        return "acyclic"
    if any(pl is not None for _, pl, _ in matches):
        return "pipelinable"
    return "loops"
