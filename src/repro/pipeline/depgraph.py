"""Distance-annotated dependence graph over one rotated loop iteration.

Nodes are the rotated ops plus one pseudo-node for the loop branch (pinned
by the scheduler at the last slot of the kernel).  Edges carry
``(latency, dist)``: op ``dst`` of iteration ``a + dist`` may issue no
earlier than ``latency`` beats after op ``src`` of iteration ``a``.

Register edges are RAW only — modulo variable expansion (see ``emit.py``)
renames every per-iteration definition, so WAR/WAW never constrain the
schedule.  Memory edges come from the disambiguator: each ordered pair of
references is probed at increasing iteration distance and the *smallest*
conflicting distance yields one edge (a distance-``d`` ordering edge
subsumes all larger distances).  References are shifted across iterations
by ``coeff * d * step`` for every annotation variable naming a loop IV —
the same arithmetic the unroller applies to its copies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..disambig import Answer
from ..ir import MemRef, Operation, VReg
from ..machine import MachineConfig, latency_of
from .shape import PipelineLoop

#: iteration-distance horizon for memory probing: the scheduler caps the
#: flat schedule at MAX_STAGES stages, and the longest latency (FDIV, 25
#: beats) spans at most ceil(25/4) extra kernel rounds at the minimum
#: II of 2 — constraints at larger distances are satisfied by any legal
#: flat schedule, so probing past this is pure waste
MAX_DIST = 16


@dataclass
class LoopDep:
    """One dependence edge of the loop graph."""

    src: int
    dst: int          #: op index, or ``graph.branch`` for the loop branch
    latency: int
    dist: int         #: iteration distance (0 = same iteration)
    kind: str         #: "reg" | "ctrl" | "mem"


class LoopGraph:
    """Rotated ops + distance edges for one pipelinable loop."""

    def __init__(self, loop: PipelineLoop, config: MachineConfig) -> None:
        self.loop = loop
        self.config = config
        self.ops: list[Operation] = loop.rot_ops
        #: pseudo-node index for the loop branch
        self.branch: int = len(self.ops)
        self.edges: list[LoopDep] = []
        self.succs: list[list[LoopDep]] = \
            [[] for _ in range(len(self.ops) + 1)]
        self.preds: list[list[LoopDep]] = \
            [[] for _ in range(len(self.ops) + 1)]
        #: rotated-iteration definition point of each register
        self.defs_at: dict[VReg, int] = {}
        for i, op in enumerate(self.ops):
            if op.dest is not None:
                self.defs_at[op.dest] = i
        #: memref annotation variable -> per-iteration step
        self.iv_names: dict[str, int] = {
            reg.name: step for reg, step in loop.steps.items()}
        self._loop_def_names = {r.name for r in self.defs_at}

    def add_edge(self, src: int, dst: int, latency: int, dist: int,
                 kind: str) -> None:
        edge = LoopDep(src, dst, latency, dist, kind)
        self.edges.append(edge)
        self.succs[src].append(edge)
        self.preds[dst].append(edge)

    # ------------------------------------------------------------------
    def use_distance(self, use_index: int, src: VReg) -> int | None:
        """Iteration distance of a register read, or None for invariants."""
        d = self.defs_at.get(src)
        if d is None:
            return None
        return 0 if d < use_index else 1

    def stride(self, op_index: int) -> int:
        """Per-iteration address delta of a memory op's reference."""
        ref = self.ops[op_index].memref
        if ref is None:
            return 0
        return sum(coeff * self.iv_names[var]
                   for var, coeff in ref.coeffs if var in self.iv_names)

    def shiftable_ref(self, op_index: int) -> MemRef | None:
        """The op's memref when it can be advanced across iterations.

        A reference is shiftable when every annotation variable is either
        a loop IV (shift by ``coeff * d * step``) or loop-invariant
        (contributes nothing).  A variable naming a loop-varying non-IV
        register makes cross-iteration comparison unsound — treat as
        unknown.
        """
        ref = self.ops[op_index].memref
        if ref is None:
            return None
        for var, _coeff in ref.coeffs:
            if var in self._loop_def_names and var not in self.iv_names:
                return None
        return ref

    def shifted_ref(self, op_index: int, dist: int) -> MemRef | None:
        """The op's reference as seen ``dist`` iterations later."""
        ref = self.shiftable_ref(op_index)
        if ref is None:
            return None
        delta = self.stride(op_index) * dist
        return ref.shifted(delta) if delta else ref


def build_loop_graph(loop: PipelineLoop, config: MachineConfig,
                     disambiguator) -> LoopGraph:
    """Construct the full dependence graph for one matched loop."""
    g = LoopGraph(loop, config)
    ops = g.ops

    # --- register RAW (the only register edges; MVE handles the rest) ---
    for i, op in enumerate(ops):
        for src in set(op.reg_srcs()):
            d = g.defs_at.get(src)
            if d is None:
                continue
            dist = 0 if d < i else 1
            g.add_edge(d, i, latency_of(ops[d], config), dist, "reg")

    # --- control: the exit test must land before the branch reads it ---
    cmp_index = g.defs_at[loop.pred]
    g.add_edge(cmp_index, g.branch,
               latency_of(ops[cmp_index], config), 0, "ctrl")

    # --- memory ordering --------------------------------------------------
    mem = [i for i, op in enumerate(ops) if op.is_memory]
    store_load_lat = max(1, config.lat_mem - 2)   # no store forwarding
    for u in mem:
        for v in mem:
            if ops[u].is_load and ops[v].is_load:
                continue
            # ordered pair: u of iteration a, v of iteration a + d.  Within
            # one iteration (d = 0) only program order u-before-v matters;
            # self-pairs and reversed pairs start at distance 1.
            d_start = 0 if u < v else 1
            latency = store_load_lat \
                if ops[u].is_store and ops[v].is_load else 1
            ref_u = g.shiftable_ref(u)
            if ref_u is None or g.shiftable_ref(v) is None:
                # unknown reference: conservatively serialize at the
                # smallest distance (subsumes every larger one)
                g.add_edge(u, v, latency, d_start, "mem")
                continue
            for d in range(d_start, MAX_DIST + 1):
                if disambiguator.alias(ref_u, g.shifted_ref(v, d)) \
                        is not Answer.NO:
                    g.add_edge(u, v, latency, d, "mem")
                    break
    return g
