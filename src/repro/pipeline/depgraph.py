"""Re-export shim: the loop dependence builder now lives in the unified
scheduling core — :mod:`repro.sched.deps` in modulo mode."""

from __future__ import annotations

from ..sched.deps import (MAX_DIST, LoopDep, LoopGraph, build_loop_graph)

__all__ = ["MAX_DIST", "LoopDep", "LoopGraph", "build_loop_graph"]
