"""The three-valued answer the disambiguator gives the code generator.

Paper, section 6.4.2: "the code generator, as it schedules memory
references, [can] ask for any two references, 'can these conflict, modulo
the number of memory banks'?  The answer can be 'no', 'yes', or 'maybe'."
"""

from __future__ import annotations

from enum import Enum


class Answer(Enum):
    """Disambiguator verdict for a pairwise memory-reference query."""

    NO = "no"        # provably never conflict: schedule together freely
    YES = "yes"      # provably always conflict: serialize
    MAYBE = "maybe"  # unknown: serialize, or gamble on the bank-stall

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError("Answer is three-valued; compare explicitly")
