"""Derivation of symbolic memory references from IR address arithmetic.

The front end annotates most references, but compiler-created or
hand-written IR may carry bare address computations.  This module rebuilds
:class:`~repro.ir.MemRef` annotations by walking the address expression tree
— the paper's "derivation trees for array index expressions" — expressing
each address as  ``base + sum(coeff * iv) + const``  over the enclosing
loop's basic induction variables.

Pointer-valued *parameters* become unknown-modulo bases (``&name``): two
references through the same parameter can still be disambiguated relative
to each other, which is exactly the paper's point about *relative*
disambiguation succeeding "in subprograms where array base addresses cannot
be known".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import find_basic_ivs, find_loops
from ..ir import (ACCESS_SIZE, Function, Imm, MemRef, Opcode, Operation,
                  Symbol, VReg)

_MAX_DEPTH = 64


@dataclass
class _Affine:
    """Derivation working form: bases + IV terms + constant."""

    bases: dict[str, int] = field(default_factory=dict)   # name -> coeff
    unknown_mod_bases: set[str] = field(default_factory=set)
    coeffs: dict[str, int] = field(default_factory=dict)  # iv name -> coeff
    const: int = 0
    failed: bool = False

    @staticmethod
    def fail() -> "_Affine":
        return _Affine(failed=True)

    def scaled(self, k: int) -> "_Affine":
        if self.failed:
            return self
        return _Affine({b: c * k for b, c in self.bases.items()},
                       set(self.unknown_mod_bases),
                       {v: c * k for v, c in self.coeffs.items()},
                       self.const * k)

    def plus(self, other: "_Affine", sign: int = 1) -> "_Affine":
        if self.failed or other.failed:
            return _Affine.fail()
        out = _Affine(dict(self.bases), set(self.unknown_mod_bases),
                      dict(self.coeffs), self.const)
        for b, c in other.bases.items():
            out.bases[b] = out.bases.get(b, 0) + sign * c
        out.unknown_mod_bases |= other.unknown_mod_bases
        for v, c in other.coeffs.items():
            out.coeffs[v] = out.coeffs.get(v, 0) + sign * c
        out.const += sign * other.const
        out.bases = {b: c for b, c in out.bases.items() if c != 0}
        out.coeffs = {v: c for v, c in out.coeffs.items() if c != 0}
        return out


@dataclass
class DerivationReport:
    """How many references were annotated / failed per function."""

    derived: int = 0
    already_annotated: int = 0
    failed: int = 0


class Derivation:
    """Rebuilds MemRef annotations for one function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self._single_defs: dict[VReg, Operation] = {}
        self._iv_regs: set[VReg] = set()
        self._collect()

    def _collect(self) -> None:
        counts: dict[VReg, int] = {}
        for op in self.func.operations():
            if op.dest is not None:
                counts[op.dest] = counts.get(op.dest, 0) + 1
                self._single_defs[op.dest] = op
        for reg, n in counts.items():
            if n != 1:
                self._single_defs.pop(reg, None)
        for loop in find_loops(self.func):
            for iv in find_basic_ivs(self.func, loop):
                self._iv_regs.add(iv.reg)

    # ------------------------------------------------------------------
    def expand_operand(self, operand, depth: int = 0) -> _Affine:
        """Symbolically expand one operand into an affine form."""
        if depth > _MAX_DEPTH:
            return _Affine.fail()
        if isinstance(operand, Imm):
            if isinstance(operand.value, float):
                return _Affine.fail()
            return _Affine(const=int(operand.value))
        if isinstance(operand, Symbol):
            return _Affine(bases={operand.name: 1})
        if isinstance(operand, VReg):
            if operand in self._iv_regs:
                return _Affine(coeffs={operand.name: 1})
            if operand in self.func.params:
                # a pointer argument: unknown base, but stable identity
                name = f"&{operand.name}"
                return _Affine(bases={name: 1}, unknown_mod_bases={name})
            op = self._single_defs.get(operand)
            if op is None:
                return _Affine.fail()
            return self.expand_op(op, depth + 1)
        return _Affine.fail()

    def expand_op(self, op: Operation, depth: int) -> _Affine:
        opc = op.opcode
        if opc is Opcode.MOV:
            return self.expand_operand(op.srcs[0], depth)
        if opc is Opcode.ADD:
            return self.expand_operand(op.srcs[0], depth).plus(
                self.expand_operand(op.srcs[1], depth))
        if opc is Opcode.SUB:
            return self.expand_operand(op.srcs[0], depth).plus(
                self.expand_operand(op.srcs[1], depth), sign=-1)
        if opc is Opcode.SHL and isinstance(op.srcs[1], Imm):
            shift = int(op.srcs[1].value) & 31
            return self.expand_operand(op.srcs[0], depth).scaled(1 << shift)
        if opc is Opcode.MUL:
            a, b = op.srcs
            if isinstance(b, Imm) and not isinstance(b.value, float):
                return self.expand_operand(a, depth).scaled(int(b.value))
            if isinstance(a, Imm) and not isinstance(a.value, float):
                return self.expand_operand(b, depth).scaled(int(a.value))
        if opc is Opcode.NEG:
            return self.expand_operand(op.srcs[0], depth).scaled(-1)
        return _Affine.fail()

    # ------------------------------------------------------------------
    def memref_for(self, op: Operation) -> MemRef | None:
        """Derive the MemRef of one load/store, or None on failure.

        Exactly one *symbol* base (coefficient 1) becomes the MemRef base;
        failing that, a single pointer-parameter term with coefficient 1
        becomes an unknown-modulo base.  Any remaining parameter terms fold
        into the variable coefficients — a parameter is a fixed-per-call
        integer, so it behaves like an opaque index variable and still
        cancels in relative queries.
        """
        size = ACCESS_SIZE[op.opcode]
        base_operand, offset_operand = (op.srcs[1], op.srcs[2]) \
            if op.is_store else (op.srcs[0], op.srcs[1])
        affine = self.expand_operand(base_operand).plus(
            self.expand_operand(offset_operand))
        if affine.failed:
            return None

        symbols = {b: c for b, c in affine.bases.items()
                   if b not in affine.unknown_mod_bases}
        params = {b: c for b, c in affine.bases.items()
                  if b in affine.unknown_mod_bases}
        coeffs = dict(affine.coeffs)
        unknown_mod = False

        if len(symbols) == 1 and next(iter(symbols.values())) == 1:
            (base, _), = symbols.items()
            for name, coeff in params.items():
                coeffs[name] = coeffs.get(name, 0) + coeff
        elif not symbols and len(params) == 1 \
                and next(iter(params.values())) == 1:
            (base, _), = params.items()
            unknown_mod = True
        else:
            return None
        return MemRef.make(base, coeffs, affine.const, size,
                           base_unknown_mod=unknown_mod)


def derive_memrefs(func: Function,
                   overwrite: bool = False) -> DerivationReport:
    """Annotate every memory operation in ``func`` that lacks a MemRef."""
    derivation = Derivation(func)
    report = DerivationReport()
    for op in func.operations():
        if not op.is_memory:
            continue
        if op.memref is not None and not overwrite:
            report.already_annotated += 1
            continue
        ref = derivation.memref_for(op)
        if ref is None:
            report.failed += 1
        else:
            op.memref = ref
            report.derived += 1
    return report
