"""The memory disambiguator (paper section 6.4.2 / 6.4.4)."""

from .affine import AffineDiff, distinct_objects, subtract
from .answer import Answer
from .derivation import Derivation, DerivationReport, derive_memrefs
from .diophantine import (always_zero_mod, can_be_zero, can_be_zero_mod,
                          can_overlap)
from .disambiguator import INTERLEAVE, DisambigStats, Disambiguator

__all__ = [
    "AffineDiff", "distinct_objects", "subtract", "Answer",
    "Derivation", "DerivationReport", "derive_memrefs",
    "always_zero_mod", "can_be_zero", "can_be_zero_mod", "can_overlap",
    "INTERLEAVE", "DisambigStats", "Disambiguator",
]
