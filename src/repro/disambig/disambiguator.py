"""The memory disambiguator: pairwise alias and bank-conflict queries.

This is the compiler module the paper singles out (section 6.4.2): it
"passes judgment on the feasibility of simultaneous memory references",
answering *no / yes / maybe* for

* :meth:`Disambiguator.alias` — can two references touch the same bytes?
  (orders loads against stores in the dependence graph), and
* :meth:`Disambiguator.bank_equal` / :meth:`controller_equal` — can two
  references land on the same RAM bank / memory controller, modulo the
  interleave?  (gates same-beat issue in the scheduler).

The *relative* form (section 6.4.4) needs only "is expr1 ever equal expr2
modulo N", never absolute addresses, so it succeeds for argument arrays
whose base addresses are unknown — those carry ``base_unknown_mod`` and
still disambiguate against references with the same base.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import DisambigError
from ..ir import MemoryImage, MemRef, Module, Operation
from ..obs import get_tracer
from .affine import AffineDiff, distinct_objects, subtract
from .answer import Answer
from .diophantine import (always_zero_mod, can_be_zero_mod, can_overlap)

#: Byte width of one interleave unit (the TRACE's banks serve 64-bit words).
INTERLEAVE = 8


@dataclass
class DisambigStats:
    """Query counters, per question kind and answer (experiment E5).

    When an observability tracer is attached (``counters``), every answer
    is mirrored into its registry as ``disambig.<kind>.<answer>``.
    """

    counts: Counter = field(default_factory=Counter)
    counters: object = None

    def record(self, kind: str, answer: Answer) -> Answer:
        self.counts[(kind, answer.value)] += 1
        if self.counters is not None:
            self.counters.inc(f"disambig.{kind}.{answer.value}")
        return answer

    def rate(self, kind: str, answer: Answer) -> float:
        total = sum(c for (k, _), c in self.counts.items() if k == kind)
        if total == 0:
            return 0.0
        return self.counts[(kind, answer.value)] / total


class Disambiguator:
    """Answers pairwise memory-reference questions for one module.

    Args:
        module: provides the compile-time data layout (symbol addresses are
            fixed by the loader deterministically, so the compiler may use
            them — as on the real machine).
        interleave: bytes per bank word.
    """

    def __init__(self, module: Module | None = None,
                 interleave: int = INTERLEAVE,
                 fortran_args: bool = False,
                 tracer=None, query_budget: int | None = None) -> None:
        self.layout = MemoryImage(module).layout if module is not None else {}
        self.interleave = interleave
        #: FORTRAN argument semantics: two *different* pointer arguments
        #: may be assumed not to alias (the language forbids it).  Their
        #: bank residues are still unknown — exactly the situation the
        #: paper's bank-stall gamble was built for.
        self.fortran_args = fortran_args
        #: pairwise queries are quadratic in trace length; an optional
        #: budget bounds pathological inputs.  Exhaustion raises
        #: :class:`~repro.errors.DisambigError`, which the trace compiler
        #: downgrades to per-block scheduling instead of failing.
        self.query_budget = query_budget
        self.queries = 0
        obs = get_tracer(tracer)
        self.stats = DisambigStats(
            counters=obs.counters if obs.enabled else None)

    def _charge(self) -> None:
        self.queries += 1
        if self.query_budget is not None and self.queries > self.query_budget:
            raise DisambigError(
                f"disambiguation budget exhausted after "
                f"{self.query_budget} pairwise queries")

    # ------------------------------------------------------------------
    @staticmethod
    def _ref(item) -> MemRef | None:
        if isinstance(item, Operation):
            return item.memref
        return item

    def _diff(self, a: MemRef, b: MemRef) -> AffineDiff:
        return subtract(a, b, self.layout)

    # ------------------------------------------------------------------
    def alias(self, a, b) -> Answer:
        """Can the two references access overlapping bytes?"""
        self._charge()
        ref_a, ref_b = self._ref(a), self._ref(b)
        if ref_a is None or ref_b is None:
            return self.stats.record("alias", Answer.MAYBE)
        if distinct_objects(ref_a, ref_b):
            return self.stats.record("alias", Answer.NO)
        if (self.fortran_args
                and ref_a.base is not None and ref_b.base is not None
                and ref_a.base != ref_b.base
                and (ref_a.base_unknown_mod or ref_b.base_unknown_mod)):
            return self.stats.record("alias", Answer.NO)
        diff = self._diff(ref_a, ref_b)
        if not diff.known:
            return self.stats.record("alias", Answer.MAYBE)
        if diff.is_constant:
            overlap = -ref_a.size < diff.const < ref_b.size
            return self.stats.record(
                "alias", Answer.YES if overlap else Answer.NO)
        if not can_overlap(diff, ref_a.size, ref_b.size):
            return self.stats.record("alias", Answer.NO)
        return self.stats.record("alias", Answer.MAYBE)

    # ------------------------------------------------------------------
    def _group_equal(self, a, b, modulus: int, kind: str) -> Answer:
        """Shared math for bank/controller queries.

        Bank-word index is ``addr // interleave``; two refs share a group of
        ``modulus`` interleaved units iff their word indices are congruent.
        When the byte difference is provably a multiple of the interleave,
        the word-index difference is exactly ``diff / interleave`` whatever
        the (common, unknown) base — the relative-disambiguation trick.
        """
        self._charge()
        ref_a, ref_b = self._ref(a), self._ref(b)
        if ref_a is None or ref_b is None:
            return self.stats.record(kind, Answer.MAYBE)
        diff = self._diff(ref_a, ref_b)
        if not diff.known:
            return self.stats.record(kind, Answer.MAYBE)

        unit = self.interleave
        aligned = (diff.const % unit == 0
                   and all(c % unit == 0 for _, c in diff.coeffs))
        if aligned:
            if always_zero_mod(diff, unit * modulus):
                return self.stats.record(kind, Answer.YES)
            if not can_be_zero_mod(diff, unit * modulus):
                return self.stats.record(kind, Answer.NO)
            return self.stats.record(kind, Answer.MAYBE)

        if diff.is_constant:
            # word-index difference is floor(d/u) or floor(d/u)+1 depending
            # on the base's alignment within the word
            k = diff.const // unit
            hits = [(k % modulus) == 0, ((k + 1) % modulus) == 0]
            if all(hits):
                return self.stats.record(kind, Answer.YES)
            if not any(hits):
                return self.stats.record(kind, Answer.NO)
        return self.stats.record(kind, Answer.MAYBE)

    def bank_equal(self, a, b, total_banks: int) -> Answer:
        """Can the refs hit the same RAM bank (``total_banks`` interleaved)?"""
        return self._group_equal(a, b, total_banks, "bank")

    def controller_equal(self, a, b, n_controllers: int) -> Answer:
        """Can the refs hit the same memory controller?"""
        return self._group_equal(a, b, n_controllers, "controller")
