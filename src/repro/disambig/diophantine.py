"""Diophantine solvability tests on affine address differences.

Paper, section 6.4.2: "The disambiguator builds derivation trees for array
index expressions and attempts to solve the diophantine equations in terms
of the loop induction variables."

Two tests are provided:

* :func:`can_be_zero` — can ``diff == 0`` for *some* integer assignment of
  the residual variables?  (GCD test.)
* :func:`can_be_zero_mod` — can ``diff ≡ 0 (mod M)``?  This is the
  *relative modulo-N* question the TRACE bank scheduler asks.

Both are conservative in the right direction: a "no" is a proof, a "yes"
only says a solution exists over unconstrained integers (runtime values
might still avoid it), so callers map "solvable" to MAYBE unless the
difference is fully constant.
"""

from __future__ import annotations

import math

from .affine import AffineDiff


def can_be_zero(diff: AffineDiff) -> bool:
    """Can the difference be exactly zero for some integer var values?"""
    if not diff.known:
        return True
    if not diff.coeffs:
        return diff.const == 0
    g = 0
    for _, coeff in diff.coeffs:
        g = math.gcd(g, abs(coeff))
    return diff.const % g == 0


def can_overlap(diff: AffineDiff, size_a: int, size_b: int) -> bool:
    """Can the byte ranges [a, a+size_a) and [b, b+size_b) intersect?

    With ``diff = a - b``, overlap means ``-size_a < diff < size_b``; with
    residual variables we test solvability of each value in that window.
    """
    if not diff.known:
        return True
    if not diff.coeffs:
        return -size_a < diff.const < size_b
    g = 0
    for _, coeff in diff.coeffs:
        g = math.gcd(g, abs(coeff))
    # diff can take any value ≡ const (mod g); overlap iff some value in
    # the open window shares that residue
    return any((delta - diff.const) % g == 0
               for delta in range(-size_a + 1, size_b))


def can_be_zero_mod(diff: AffineDiff, modulus: int) -> bool:
    """Can ``diff ≡ 0 (mod modulus)`` for some integer var values?

    Linear congruence ``sum(c_i * x_i) ≡ -const (mod M)`` is solvable iff
    ``gcd(c_1, ..., c_k, M)`` divides ``const``.
    """
    if modulus <= 1:
        return True
    if not diff.known:
        return True
    g = modulus
    for _, coeff in diff.coeffs:
        g = math.gcd(g, abs(coeff))
    return diff.const % g == 0


def always_zero_mod(diff: AffineDiff, modulus: int) -> bool:
    """Is ``diff ≡ 0 (mod modulus)`` for *every* var assignment?

    True iff every coefficient and the constant are multiples of M.
    """
    if modulus <= 1:
        return True
    if not diff.known:
        return False
    return (diff.const % modulus == 0
            and all(coeff % modulus == 0 for _, coeff in diff.coeffs))
