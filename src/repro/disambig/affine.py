"""Affine address algebra over :class:`~repro.ir.MemRef` annotations.

The disambiguator reasons about the *difference* of two symbolic addresses.
``AffineDiff`` captures ``addr_a - addr_b`` as

    base_delta? + sum(coeff_v * v) + const

where ``base_delta`` is a known byte distance when both bases are known
module-level objects (their layout is fixed at compile time, exactly as on
the real TRACE where the compiler/linker lay out memory), zero when the
bases are the *same* (possibly unknown!) object — the paper's *relative*
disambiguation — and unknown otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import MemRef


@dataclass(frozen=True)
class AffineDiff:
    """The symbolic difference of two references' addresses (in bytes).

    Attributes:
        known: False when the base distance is unknown (different bases,
            at least one not a known module object); all queries must
            answer MAYBE then.
        coeffs: residual variable coefficients after subtraction.
        const: constant byte difference (includes base distance if known).
    """

    known: bool
    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @property
    def is_constant(self) -> bool:
        return self.known and not self.coeffs


def subtract(a: MemRef, b: MemRef,
             layout: dict[str, int] | None = None) -> AffineDiff:
    """Compute ``a - b`` as an :class:`AffineDiff`.

    Args:
        a, b: the two references.
        layout: compile-time data layout (symbol -> byte address), used to
            resolve the distance between two *different* known bases.
    """
    coeffs = a.coeff_dict()
    for var, coeff in b.coeffs:
        coeffs[var] = coeffs.get(var, 0) - coeff
    coeffs = {v: c for v, c in coeffs.items() if c != 0}
    const = a.const - b.const

    if a.base is not None and a.base == b.base:
        base_known = True              # same object: distance cancels
    elif (a.base is not None and b.base is not None
          and layout is not None
          and a.base in layout and b.base in layout
          and not a.base_unknown_mod and not b.base_unknown_mod):
        base_known = True
        const += layout[a.base] - layout[b.base]
    else:
        base_known = False

    return AffineDiff(base_known, tuple(sorted(coeffs.items())), const)


def distinct_objects(a: MemRef, b: MemRef) -> bool:
    """True when the refs address provably different memory objects.

    Two distinct named module-level objects can never overlap regardless of
    index values (the language guarantees separate storage).  Unknown-modulo
    bases (pointer arguments) do NOT qualify: two different pointer
    parameters may well address the same array.
    """
    return (a.base is not None and b.base is not None
            and a.base != b.base
            and not a.base_unknown_mod and not b.base_unknown_mod)
