"""Content-addressed compile cache.

The trace-scheduling bet moves work to compile time; the experiment
harness pays that cost on every sweep point and benchmark row.  This
package makes recompilation free when nothing the compiler reads has
changed: artifacts are keyed by a SHA-256 over the module text, machine
configuration, scheduling options, loop-engine strategy, and classical
pipeline knobs (:func:`compile_key`), held in an in-memory LRU backed by
an optional on-disk store (:class:`CompileCache`), and surfaced through
``cache.hit`` / ``cache.miss`` counters and the ``repro cache`` CLI.
"""

from .key import CACHE_SCHEMA, compile_key, module_fingerprint
from .store import (CacheStats, CompileCache, default_cache_dir,
                    default_cache_quota_mb, process_cache)

__all__ = [
    "CACHE_SCHEMA", "compile_key", "module_fingerprint",
    "CacheStats", "CompileCache", "default_cache_dir",
    "default_cache_quota_mb", "process_cache",
]
