"""The compile-cache store: in-memory LRU over an optional on-disk tier.

Lookups go memory first, then disk.  A disk hit is promoted into memory;
an in-memory eviction keeps the disk copy (the disk tier is the
capacity tier, the LRU is the latency tier).  Disk entries are one
pickle file per key, written atomically (temp file + ``os.replace``) so
concurrent sweep workers sharing a cache directory never observe a torn
artifact; a corrupt or unreadable file is treated as a miss and removed.

The disk tier is built for *many concurrent tenants* (the ``repro
serve`` daemon, parallel sweep workers, ad-hoc CLI runs all sharing one
store):

* **Sharding** — entries live under two-hex-character shard directories
  (``ab/<key>.pkl``), so a hot store spreads across 256 directories
  instead of one giant listing.  Legacy flat-layout entries are still
  found on read and swept by ``clear``/``prune``.
* **Cross-process locking** — mutating *scans* (``prune``, ``clear``)
  serialize on an advisory ``flock`` over ``<dir>/.lock``, so two
  processes never interleave an eviction scan.  Entry writes and plain
  ``get`` never lock: atomic replace guarantees whole files, so tenants
  stream writes into the store without serializing on each other.
* **Quota / eviction** — ``max_disk_mb`` bounds the disk tier;
  :meth:`CompileCache.prune` evicts least-recently-*used* entries first
  (every disk hit refreshes the entry's mtime) until the store fits.
  ``put`` does *not* rescan the store every time: it tracks an estimate
  of the disk footprint and prunes only once enough new bytes have
  landed to plausibly exceed the quota, evicting down to a low-water
  mark so steady-state writes near the quota stay O(1) amortized.
  Every scan tolerates entries vanishing mid-flight (a concurrent
  ``clear`` or competing prune): ``ENOENT`` means someone else already
  did the work, never an error.

Every lookup reports through the usual counter registry —
``cache.hit`` / ``cache.miss`` (and ``cache.hit_disk`` for the subset of
hits served from disk) — so cache behavior shows up in telemetry,
``repro stats`` and the sweep JSON like any other subsystem.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass

try:
    import fcntl
except ImportError:                                  # non-POSIX hosts
    fcntl = None  # type: ignore[assignment]

#: Default on-disk location, overridable with ``$REPRO_CACHE_DIR``.
DEFAULT_DIR = os.path.join(os.path.expanduser("~"), ".cache",
                           "repro-compile")

_MB = 1024 * 1024

#: Put-triggered prunes evict to this fraction of the quota, so the next
#: prune is only due after (1 - _LOW_WATER) * quota of fresh writes.
_LOW_WATER = 0.9


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_DIR)


def default_cache_quota_mb() -> float | None:
    """``$REPRO_CACHE_MAX_MB`` as a float, or ``None`` (unbounded)."""
    env = os.environ.get("REPRO_CACHE_MAX_MB")
    return float(env) if env else None


@dataclass
class CacheStats:
    """One cache's counters plus a snapshot of its disk tier."""

    hits: int = 0
    misses: int = 0
    hits_disk: int = 0
    stores: int = 0
    evictions: int = 0
    disk_evictions: int = 0
    memory_entries: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    quota_mb: float | None = None
    directory: str | None = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def row(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses,
            "hits_disk": self.hits_disk, "hit_rate": round(self.hit_rate, 3),
            "stores": self.stores, "evictions": self.evictions,
            "disk_evictions": self.disk_evictions,
            "memory_entries": self.memory_entries,
            "disk_entries": self.disk_entries,
            "disk_bytes": self.disk_bytes,
            "quota_mb": self.quota_mb,
            "directory": self.directory,
        }


class CompileCache:
    """Content-addressed artifact store: LRU memory tier + disk tier.

    Args:
        max_entries: in-memory LRU capacity (evicted entries survive on
            disk when a directory is configured).
        directory: on-disk tier location; ``None`` disables persistence
            (the cache is then purely per-process).
        max_disk_mb: disk-tier quota in MiB; ``None`` (default) leaves
            the tier unbounded.  When set, writes trigger an LRU prune
            once enough new bytes have landed to plausibly exceed the
            quota (not a full store rescan on every put).
    """

    def __init__(self, max_entries: int = 64,
                 directory: str | None = None,
                 max_disk_mb: float | None = None) -> None:
        self.max_entries = max(1, max_entries)
        self.directory = directory
        self.max_disk_mb = max_disk_mb
        self._lru: OrderedDict[str, object] = OrderedDict()
        #: bytes the disk tier held at the last scan plus bytes this
        #: process wrote since; None until the first quota'd write
        self._disk_estimate: float | None = None
        self._stats = CacheStats(directory=directory, quota_mb=max_disk_mb)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        """Sharded entry path: ``<dir>/<key[:2]>/<key>.pkl``."""
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def _legacy_path(self, key: str) -> str:
        """Pre-sharding flat path, still honored on reads."""
        return os.path.join(self.directory, f"{key}.pkl")

    @contextlib.contextmanager
    def _locked(self):
        """Advisory cross-process write lock over the store directory.

        Serializes mutating scans (entry writes, prune, clear) between
        processes sharing one directory.  Degrades to a no-op where
        ``flock`` is unavailable or the directory cannot be created —
        atomic replace still keeps individual entries untorn.
        """
        if self.directory is None or fcntl is None:
            yield
            return
        handle = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle = open(os.path.join(self.directory, ".lock"), "a+")
            fcntl.flock(handle, fcntl.LOCK_EX)
        except OSError:
            handle = None
        try:
            yield
        finally:
            if handle is not None:
                with contextlib.suppress(OSError):
                    fcntl.flock(handle, fcntl.LOCK_UN)
                handle.close()

    def get(self, key: str, counters=None):
        """The cached artifact, or ``None`` on a miss."""
        value = self._lru.get(key)
        if value is not None:
            self._lru.move_to_end(key)
            self._stats.hits += 1
            if counters is not None:
                counters.inc("cache.hit")
            return value
        if self.directory is not None:
            value = self._disk_get(key)
            if value is not None:
                self._remember(key, value)
                self._stats.hits += 1
                self._stats.hits_disk += 1
                if counters is not None:
                    counters.inc("cache.hit")
                    counters.inc("cache.hit_disk")
                return value
        self._stats.misses += 1
        if counters is not None:
            counters.inc("cache.miss")
        return None

    def put(self, key: str, value) -> None:
        """Store an artifact under its content key (memory + disk)."""
        self._remember(key, value)
        self._stats.stores += 1
        if self.directory is not None:
            written = self._disk_put(key, value)
            if self.max_disk_mb is not None:
                self._maybe_prune(written)

    def _maybe_prune(self, written: int) -> None:
        """Enforce the quota on a write-volume cadence, not per put.

        The estimate is per-process (other tenants' writes and evictions
        are unseen between scans), so the quota can be transiently
        exceeded; every prune rescans and re-syncs it to the real total.
        """
        if self._disk_estimate is None:
            # first quota'd write in this process: learn the footprint
            # (one full scan), evicting if the store is already over
            self.prune()
            return
        self._disk_estimate += written
        if self._disk_estimate > self.max_disk_mb * _MB:
            # evict to the low-water mark so the very next put does not
            # immediately cross the quota and rescan again
            self.prune(max_mb=self.max_disk_mb * _LOW_WATER)

    def _remember(self, key: str, value) -> None:
        self._lru[key] = value
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            self._stats.evictions += 1

    # ------------------------------------------------------------------
    def _disk_get(self, key: str):
        for path in (self._path(key), self._legacy_path(key)):
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                continue
            except Exception:
                # torn/corrupt/stale-schema entry: drop it, report a miss
                with contextlib.suppress(OSError):
                    os.unlink(path)
                continue
            # refresh recency so LRU-by-mtime pruning spares hot entries
            with contextlib.suppress(OSError):
                os.utime(path)
            return value
        return None

    def _disk_put(self, key: str, value) -> int:
        """Write one entry; bytes written (0 when the tier is degraded).

        No store lock: temp file + atomic replace already guarantees
        other tenants never observe a torn entry, so concurrent writers
        proceed without serializing on each other.  The flock is
        reserved for eviction scans (``prune``/``clear``).
        """
        try:
            shard = os.path.dirname(self._path(key))
            os.makedirs(shard, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, pickle.HIGHEST_PROTOCOL)
                    written = handle.tell()
                os.replace(tmp, self._path(key))
                return written
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError:
            # a read-only or full disk tier degrades to memory-only
            return 0

    # ------------------------------------------------------------------
    def _disk_listing(self) -> list[str]:
        """Every entry file, across shard directories and the legacy
        flat layout; tolerant of directories vanishing mid-scan."""
        if self.directory is None:
            return []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        paths = []
        for name in names:
            full = os.path.join(self.directory, name)
            if name.endswith(".pkl"):
                paths.append(full)
                continue
            if len(name) <= 2:               # a key-prefix shard dir
                try:
                    children = os.listdir(full)
                except OSError:      # shard removed by a concurrent clear
                    continue
                paths.extend(os.path.join(full, child)
                             for child in children
                             if child.endswith(".pkl"))
        return paths

    def _entries(self) -> list[tuple[str, float, int]]:
        """``(path, mtime, size)`` per live entry; vanished files are
        skipped (a concurrent prune/clear beat us to them)."""
        entries = []
        for path in self._disk_listing():
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((path, info.st_mtime, info.st_size))
        return entries

    def stats(self) -> CacheStats:
        """A snapshot including the disk tier's current footprint."""
        s = self._stats
        s.memory_entries = len(self._lru)
        s.quota_mb = self.max_disk_mb
        entries = self._entries()
        s.disk_entries = len(entries)
        s.disk_bytes = sum(size for _, _, size in entries)
        return s

    def prune(self, max_mb: float | None = None) -> tuple[int, int]:
        """Evict least-recently-used disk entries until under quota.

        ``max_mb`` overrides the cache's configured ``max_disk_mb`` for
        this call.  Returns ``(entries removed, bytes freed)``.  Safe
        against concurrent writers and cleaners: the scan runs under the
        store lock, and an entry that vanishes anyway simply stops
        counting against the quota.
        """
        quota = self.max_disk_mb if max_mb is None else max_mb
        if self.directory is None or quota is None:
            return 0, 0
        removed = freed = 0
        with self._locked():
            entries = sorted(self._entries(), key=lambda e: (e[1], e[0]))
            total = sum(size for _, _, size in entries)
            budget = quota * _MB
            for path, _, size in entries:
                if total <= budget:
                    break
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    total -= size            # already gone elsewhere
                    continue
                except OSError:
                    continue
                total -= size
                removed += 1
                freed += size
            # the scan just measured the real footprint: re-sync the
            # write-cadence estimate put() accumulates against
            self._disk_estimate = float(total)
        self._stats.disk_evictions += removed
        return removed, freed

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns entries removed.

        Tolerates concurrent writers: an entry deleted under us counts
        as cleared, and writes racing the scan simply land in the
        emptied store.
        """
        removed = len(self._lru)
        self._lru.clear()
        with self._locked():
            for path in self._disk_listing():
                try:
                    os.unlink(path)
                    removed += 1
                except FileNotFoundError:
                    removed += 1             # a concurrent clear got it
                except OSError:
                    pass
        return removed


_PROCESS_CACHE: CompileCache | None = None


def process_cache(directory: str | None = None,
                  max_disk_mb: float | None = None) -> CompileCache:
    """The shared per-process cache (created on first use).

    The CLI, benchmarks, and service workers route through this so
    repeated commands in one process — and, via the disk tier, across
    processes — share compiled artifacts.  An explicit ``directory``
    rebinds the disk tier (used by ``--cache-dir``); an explicit
    ``max_disk_mb`` (or ``$REPRO_CACHE_MAX_MB``) bounds it.  Tests build
    private ``CompileCache`` instances instead.
    """
    global _PROCESS_CACHE
    quota = max_disk_mb if max_disk_mb is not None \
        else default_cache_quota_mb()
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = CompileCache(directory=directory
                                      or default_cache_dir(),
                                      max_disk_mb=quota)
    elif ((directory is not None
           and _PROCESS_CACHE.directory != directory)
          or (max_disk_mb is not None
              and _PROCESS_CACHE.max_disk_mb != max_disk_mb)):
        _PROCESS_CACHE = CompileCache(directory=directory
                                      or _PROCESS_CACHE.directory,
                                      max_disk_mb=quota)
    return _PROCESS_CACHE
