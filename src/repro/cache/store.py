"""The compile-cache store: in-memory LRU over an optional on-disk tier.

Lookups go memory first, then disk.  A disk hit is promoted into memory;
an in-memory eviction keeps the disk copy (the disk tier is the
capacity tier, the LRU is the latency tier).  Disk entries are one
pickle file per key, written atomically (temp file + ``os.replace``) so
concurrent sweep workers sharing a cache directory never observe a torn
artifact; a corrupt or unreadable file is treated as a miss and removed.

Every lookup reports through the usual counter registry —
``cache.hit`` / ``cache.miss`` (and ``cache.hit_disk`` for the subset of
hits served from disk) — so cache behavior shows up in telemetry,
``repro stats`` and the sweep JSON like any other subsystem.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass

#: Default on-disk location, overridable with ``$REPRO_CACHE_DIR``.
DEFAULT_DIR = os.path.join(os.path.expanduser("~"), ".cache",
                           "repro-compile")


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_DIR)


@dataclass
class CacheStats:
    """One cache's counters plus a snapshot of its disk tier."""

    hits: int = 0
    misses: int = 0
    hits_disk: int = 0
    stores: int = 0
    evictions: int = 0
    memory_entries: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    directory: str | None = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def row(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses,
            "hits_disk": self.hits_disk, "hit_rate": round(self.hit_rate, 3),
            "stores": self.stores, "evictions": self.evictions,
            "memory_entries": self.memory_entries,
            "disk_entries": self.disk_entries,
            "disk_bytes": self.disk_bytes,
            "directory": self.directory,
        }


class CompileCache:
    """Content-addressed artifact store: LRU memory tier + disk tier.

    Args:
        max_entries: in-memory LRU capacity (evicted entries survive on
            disk when a directory is configured).
        directory: on-disk tier location; ``None`` disables persistence
            (the cache is then purely per-process).
    """

    def __init__(self, max_entries: int = 64,
                 directory: str | None = None) -> None:
        self.max_entries = max(1, max_entries)
        self.directory = directory
        self._lru: OrderedDict[str, object] = OrderedDict()
        self._stats = CacheStats(directory=directory)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def get(self, key: str, counters=None):
        """The cached artifact, or ``None`` on a miss."""
        value = self._lru.get(key)
        if value is not None:
            self._lru.move_to_end(key)
            self._stats.hits += 1
            if counters is not None:
                counters.inc("cache.hit")
            return value
        if self.directory is not None:
            value = self._disk_get(key)
            if value is not None:
                self._remember(key, value)
                self._stats.hits += 1
                self._stats.hits_disk += 1
                if counters is not None:
                    counters.inc("cache.hit")
                    counters.inc("cache.hit_disk")
                return value
        self._stats.misses += 1
        if counters is not None:
            counters.inc("cache.miss")
        return None

    def put(self, key: str, value) -> None:
        """Store an artifact under its content key (memory + disk)."""
        self._remember(key, value)
        self._stats.stores += 1
        if self.directory is not None:
            self._disk_put(key, value)

    def _remember(self, key: str, value) -> None:
        self._lru[key] = value
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            self._stats.evictions += 1

    # ------------------------------------------------------------------
    def _disk_get(self, key: str):
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # torn/corrupt/stale-schema entry: drop it, report a miss
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, value) -> None:
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # a read-only or full disk tier degrades to memory-only
            pass

    # ------------------------------------------------------------------
    def _disk_listing(self) -> list[str]:
        if self.directory is None or not os.path.isdir(self.directory):
            return []
        return [os.path.join(self.directory, name)
                for name in os.listdir(self.directory)
                if name.endswith(".pkl")]

    def stats(self) -> CacheStats:
        """A snapshot including the disk tier's current footprint."""
        s = self._stats
        s.memory_entries = len(self._lru)
        paths = self._disk_listing()
        s.disk_entries = len(paths)
        s.disk_bytes = 0
        for path in paths:
            try:
                s.disk_bytes += os.path.getsize(path)
            except OSError:
                pass
        return s

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns entries removed."""
        removed = len(self._lru)
        self._lru.clear()
        for path in self._disk_listing():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed


_PROCESS_CACHE: CompileCache | None = None


def process_cache(directory: str | None = None) -> CompileCache:
    """The shared per-process cache (created on first use).

    The CLI and benchmarks route through this so repeated commands in
    one process — and, via the disk tier, across processes — share
    compiled artifacts.  An explicit ``directory`` rebinds the disk tier
    (used by ``--cache-dir``); tests build private ``CompileCache``
    instances instead.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = CompileCache(directory=directory
                                      or default_cache_dir())
    elif directory is not None and _PROCESS_CACHE.directory != directory:
        _PROCESS_CACHE = CompileCache(directory=directory)
    return _PROCESS_CACHE
