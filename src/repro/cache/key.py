"""Content-addressed cache keys for compilation artifacts.

A compiled program is a pure function of its inputs: the IR module text,
the target :class:`~repro.machine.MachineConfig`, the
:class:`~repro.trace.SchedulingOptions`, the loop-engine strategy, and
the classical-pipeline knobs (unroll factor, inline budget).  A training
profile is itself derived from the module plus the training arguments,
so those arguments stand in for it.  Hashing exactly that tuple gives a
*content-addressed* key: any edit to the source, any config or option
flip, any strategy or unroll change produces a different digest, while
re-running the same compile — in this process, another worker, or a
later CLI invocation — finds the previous result.

The module fingerprint uses :func:`repro.ir.printer.format_module`,
which serialises functions *and* data objects (sizes, alignment, init
values).  Data layout feeds the memory-bank disambiguator and init
values feed profile training, so both belong in the key.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass

#: Bump when the pickled artifact layout changes; every key embeds it, so
#: stale on-disk entries from older schemas simply never match.
#: 2: unified scheduling core (sched/) — schedules and telemetry may
#: legally differ from schema-1 artifacts.
#: 3: exact engine (strategy "optimal") and the list scheduler's
#: wide-immediate late-slot preference — schedules may legally differ
#: from schema-2 artifacts.
#: 4: compiled-fast-path source (``_fastpath_source``) rides on the
#: pickled program — schema-3 artifacts would run but silently lack it,
#: forcing per-process regeneration; a clean break keeps warm stores
#: self-consistent.
#: 5: the heuristic-parameter layer (``HeuristicParams`` riding on
#: ``SchedulingOptions``) — the params render into the options text, so
#: tuned artifacts can never collide with DEFAULT ones; the schema break
#: keeps schema-4 keys (which never saw a params field) from aliasing
#: the new DEFAULT keys.
CACHE_SCHEMA = 5


def module_fingerprint(module) -> str:
    """SHA-256 over the module's canonical text serialisation."""
    from ..ir.printer import format_module

    return hashlib.sha256(format_module(module).encode()).hexdigest()


def _dataclass_text(obj) -> str:
    """A stable ``name(field=value, ...)`` rendering of a dataclass.

    ``repr`` would do today, but spelling it out keeps the key stable
    against future ``repr=False`` fields and guarantees field order.
    """
    if not is_dataclass(obj):
        return repr(obj)
    parts = [f"{f.name}={getattr(obj, f.name)!r}" for f in fields(obj)]
    return f"{type(obj).__name__}({', '.join(parts)})"


def compile_key(module, config, options, *, strategy: str, unroll: int,
                inline: int, use_profile: bool = False,
                train_args=()) -> str:
    """The content-addressed key for one end-to-end compilation.

    Args:
        module: the *unoptimized* input module (the classical pipeline is
            deterministic, so hashing its input is equivalent to hashing
            its output and much cheaper).
        config: target machine configuration.
        options: code-motion knobs.
        strategy: loop engine ("trace" | "pipeline" | "auto" |
            "optimal").
        unroll: classical-pipeline unroll factor.
        inline: classical-pipeline inline budget.
        use_profile: whether a training profile feeds trace selection.
        train_args: the training run's arguments (they determine the
            profile, which determines trace selection).
    """
    blob = "\n".join([
        f"schema={CACHE_SCHEMA}",
        f"module={module_fingerprint(module)}",
        f"config={_dataclass_text(config)}",
        f"options={_dataclass_text(options)}",
        f"strategy={strategy}",
        f"unroll={unroll}",
        f"inline={inline}",
        f"use_profile={use_profile}",
        f"train_args={tuple(train_args)!r}",
    ])
    return hashlib.sha256(blob.encode()).hexdigest()
