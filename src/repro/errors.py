"""Exception hierarchy for the repro package.

All errors raised by the compiler, machine model, and simulators derive from
:class:`ReproError` so callers can catch the package's failures uniformly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed IR: verification failures, bad operand classes, etc."""


class ParseError(ReproError):
    """Raised by the textual IR parser and the tiny-language front end."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class InterpError(ReproError):
    """Runtime error inside the reference interpreter (e.g. bad address)."""


class TrapError(InterpError):
    """A machine trap surfaced as a Python exception.

    The TRACE takes traps for TLB misses, bus errors, and (outside fast
    mode) floating-point exceptions.  The reference interpreter raises this
    to mirror a program-terminating trap ("Bus Error" in the paper).
    """

    def __init__(self, kind: str, detail: str = "") -> None:
        self.kind = kind
        super().__init__(f"trap: {kind}" + (f" ({detail})" if detail else ""))


class ScheduleError(ReproError):
    """The trace scheduler could not produce a legal schedule."""


class RegAllocError(ReproError):
    """Register allocation failed (ran out of physical registers/spills)."""


class EncodingError(ReproError):
    """Instruction-word encoding or mask-word packing failure."""


class MachineError(ReproError):
    """Illegal machine configuration or resource description."""


class SimError(ReproError):
    """The cycle-level simulator detected an inconsistency.

    On the real TRACE the compiler has *sole* responsibility for resource
    usage; an oversubscribed bus or register port is a compiler bug, and the
    simulator flags it as such instead of silently arbitrating.
    """
