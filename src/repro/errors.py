"""Exception hierarchy for the repro package.

All errors raised by the compiler, machine model, and simulators derive from
:class:`ReproError` so callers can catch the package's failures uniformly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed IR: verification failures, bad operand classes, etc."""


class ParseError(ReproError):
    """Raised by the textual IR parser and the tiny-language front end."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class InterpError(ReproError):
    """Runtime error inside the reference interpreter (e.g. bad address)."""


class TrapError(InterpError):
    """A machine trap surfaced as a Python exception.

    The TRACE takes traps for TLB misses, bus errors, and (outside fast
    mode) floating-point exceptions.  The reference interpreter raises this
    to mirror a program-terminating trap ("Bus Error" in the paper).

    ``beat`` and ``pc`` locate the trap when known: the simulators fill in
    the machine beat and the ``function:pc`` of the faulting instruction;
    the reference interpreter fills in its dynamic op count and the
    ``function:block:index`` of the faulting operation.  Code that raises
    the trap deep inside the memory model leaves them unset; the executor
    annotates on the way out via :meth:`locate`.
    """

    def __init__(self, kind: str, detail: str = "",
                 beat: int | None = None, pc: object = None) -> None:
        self.kind = kind
        self.detail = detail
        self.beat = beat
        self.pc = pc
        super().__init__(self._message())

    def _message(self) -> str:
        msg = f"trap: {self.kind}"
        if self.detail:
            msg += f" ({self.detail})"
        if self.beat is not None:
            msg += f" at beat {self.beat}"
        if self.pc is not None:
            msg += f" pc={self.pc}"
        return msg

    def locate(self, beat: int | None = None, pc: object = None) -> None:
        """Fill in beat/pc if they are not already known."""
        if self.beat is None and beat is not None:
            self.beat = beat
        if self.pc is None and pc is not None:
            self.pc = pc
        self.args = (self._message(),)


class ParamError(ReproError):
    """Invalid heuristic-parameter value or malformed params wire dict."""


class ScheduleError(ReproError):
    """The trace scheduler could not produce a legal schedule.

    No-progress failures carry diagnostics: ``trace_id`` (which trace),
    ``ready`` (size of the stuck ready list), and ``blocking`` (a
    human-readable description of the highest-priority unplaceable node).
    """

    def __init__(self, message: str, trace_id: str | None = None,
                 ready: int | None = None,
                 blocking: str | None = None) -> None:
        self.trace_id = trace_id
        self.ready = ready
        self.blocking = blocking
        super().__init__(message)


class DisambigError(ReproError):
    """The memory disambiguator exceeded its query budget.

    Pairwise bank/alias queries are quadratic in trace length; a budget
    bounds pathological inputs.  The trace compiler catches this and
    degrades to per-block scheduling instead of failing the compile.
    """


class RegAllocError(ReproError):
    """Register allocation failed (ran out of physical registers/spills)."""


class PipelineError(ReproError):
    """The modulo scheduler could not software-pipeline a loop.

    Raised for loops that match the pipelinable shape but defeat the
    scheduler (no feasible initiation interval within the search window,
    stage count over the cap, ...).  The trace compiler catches this and
    falls back to trace scheduling for that loop, recording the reason on
    :attr:`TraceCompileStats.pipeline_fallbacks`.
    """


class EncodingError(ReproError):
    """Instruction-word encoding or mask-word packing failure."""


class MachineError(ReproError):
    """Illegal machine configuration or resource description."""


class SimError(ReproError):
    """The cycle-level simulator detected an inconsistency.

    On the real TRACE the compiler has *sole* responsibility for resource
    usage; an oversubscribed bus or register port is a compiler bug, and the
    simulator flags it as such instead of silently arbitrating.
    """
