"""Structured tracing: nestable spans, counters, and event logs.

The compiler and the simulators do all the work that on a conventional
machine would be runtime hardware; the only way to understand a result is
to see what they actually did.  This module is the measurement substrate:

* :class:`Tracer` — collects nestable, monotonic-clocked *spans* (phase
  wall-times), named *counters*, and optional instant *events* (a
  Chrome-trace-format log loadable in Perfetto);
* :class:`NullTracer` / :data:`NULL_TRACER` — the disabled twin.  Every
  instrumented module holds a tracer unconditionally and calls it through
  the same interface; the null implementation makes the whole layer a
  handful of no-op attribute reads.  Hot per-beat paths additionally gate
  on :attr:`Tracer.enabled` so a disabled run does no per-beat work at all
  (the <5% budget is guarded by ``benchmarks/bench_obs_overhead.py``).

Span timestamps use :func:`time.perf_counter` (monotonic).  Simulator
events carry *beat numbers* as timestamps instead — they describe machine
time, not host time — and are kept on their own track when exported.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class TraceEvent:
    """One entry in the structured event log.

    ``ph`` follows the Chrome trace-event phase codes: ``"X"`` for a
    complete span (has ``dur``), ``"i"`` for an instant event.  ``ts`` and
    ``dur`` are microseconds for host-clock events; simulator events use
    beats (see module docstring).
    """

    name: str
    cat: str
    ph: str
    ts: float
    dur: float = 0.0
    depth: int = 0
    args: dict = field(default_factory=dict)

    def to_chrome(self) -> dict:
        """One Chrome trace-event dict (Perfetto-loadable)."""
        ev = {"name": self.name, "cat": self.cat, "ph": self.ph,
              "ts": self.ts, "pid": 1,
              "tid": 2 if self.cat == "sim" else 1}
        if self.ph == "X":
            ev["dur"] = self.dur
        if self.args:
            ev["args"] = dict(self.args)
        return ev


class Counters:
    """A flat registry of named numeric totals.

    Names are dotted paths (``sim.vliw.bank_stall_beats``) so reports can
    group by prefix.  ``inc(name, 0)`` registers the counter at zero —
    instrumented code uses that to guarantee a key is present even when
    the event never fired.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}

    def inc(self, name: str, n: float = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name: str, default: float = 0):
        return self._counts.get(name, default)

    def total(self, prefix: str) -> float:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(v for k, v in self._counts.items()
                   if k.startswith(prefix))

    def merge(self, other) -> None:
        """Fold another registry (or a plain name->total mapping) in.

        This is the cross-process aggregation primitive: workers never
        touch a shared registry — each returns its counters as a plain
        dict and the parent merges them, in task order, through this
        method.  Keys are folded in sorted order so repeated merges of
        the same inputs are bit-identical even for float counters.
        """
        items = other._counts if isinstance(other, Counters) else other
        for name in sorted(items):
            self.inc(name, items[name])

    def as_dict(self) -> dict[str, float]:
        """Sorted snapshot (ints stay ints, ready for ``json.dumps``)."""
        return {k: self._counts[k] for k in sorted(self._counts)}

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, name: str) -> bool:
        return name in self._counts


class Span:
    """Context-manager handle for one timed phase; re-entrant never."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "Span":
        self._depth = len(self._tracer._stack)
        self._tracer._stack.append(self.name)
        self._start = self._tracer.now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer.now_us()
        self._tracer._stack.pop()
        self._tracer._record_span(self, self._start, end - self._start,
                                  self._depth)


class Tracer:
    """Collects spans, counters, and (optionally) instant events.

    Args:
        events: keep the per-event log.  Span timing and counters are
            always on; the event log is what can grow with simulated
            beats, so it is opt-in (``--events-out`` / ``events=True``).
    """

    enabled = True

    def __init__(self, events: bool = False,
                 clock=time.perf_counter) -> None:
        self.counters = Counters()
        self.collect_events = events
        self.spans: list[TraceEvent] = []
        self.events: list[TraceEvent] = []
        self._clock = clock
        self._t0 = clock()
        self._stack: list[str] = []

    # ------------------------------------------------------------------
    def now_us(self) -> float:
        """Microseconds since the tracer was created (monotonic)."""
        return (self._clock() - self._t0) * 1e6

    def span(self, name: str, cat: str = "phase", **args) -> Span:
        """A nestable timed phase: ``with tracer.span("trace.select"): ...``"""
        return Span(self, name, cat, args)

    def _record_span(self, span: Span, start: float, dur: float,
                     depth: int) -> None:
        self.spans.append(TraceEvent(span.name, span.cat, "X", start, dur,
                                     depth, span.args))

    def event(self, name: str, cat: str = "event",
              ts: float | None = None, **args) -> None:
        """An instant event; ``ts`` overrides the host clock (beats)."""
        if not self.collect_events:
            return
        self.events.append(TraceEvent(
            name, cat, "i", self.now_us() if ts is None else ts,
            0.0, len(self._stack), args))

    # ------------------------------------------------------------------
    def current_span(self) -> str | None:
        return self._stack[-1] if self._stack else None

    def phase_times(self) -> dict[str, float]:
        """Total wall-time per span name, in seconds, sorted by name."""
        totals: dict[str, float] = {}
        for ev in self.spans:
            totals[ev.name] = totals.get(ev.name, 0.0) + ev.dur * 1e-6
        return {k: totals[k] for k in sorted(totals)}

    def chrome_trace(self) -> list[dict]:
        """The full log as a Chrome trace-event list (spans + events)."""
        return [ev.to_chrome() for ev in self.spans + self.events]


class _NullSpan:
    """Shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullCounters(Counters):
    """Counters that discard every increment."""

    __slots__ = ()

    def inc(self, name: str, n: float = 1) -> None:
        return None

    def merge(self, other) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: same interface, no state, no cost."""

    enabled = False
    collect_events = False

    def __init__(self) -> None:
        self.counters = _NullCounters()
        self.spans: list[TraceEvent] = []
        self.events: list[TraceEvent] = []

    def now_us(self) -> float:
        return 0.0

    def span(self, name: str, cat: str = "phase", **args) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, cat: str = "event",
              ts: float | None = None, **args) -> None:
        return None

    def current_span(self) -> None:
        return None

    def phase_times(self) -> dict[str, float]:
        return {}

    def chrome_trace(self) -> list[dict]:
        return []


#: Process-wide disabled tracer; instrumented code defaults to this.
NULL_TRACER = NullTracer()


def get_tracer(tracer) -> Tracer:
    """``tracer`` if given, else the shared null tracer."""
    return tracer if tracer is not None else NULL_TRACER
