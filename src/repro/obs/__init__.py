"""Observability: structured tracing, counters, and telemetry reports.

Every pipeline phase (classical passes, trace selection, scheduling,
register allocation, disambiguation, the three simulators) reports
through this layer when a :class:`Tracer` is supplied, and costs nothing
when it is not (:data:`NULL_TRACER`).
"""

from .telemetry import Telemetry
from .tracer import (NULL_TRACER, Counters, NullTracer, Span, TraceEvent,
                     Tracer, get_tracer)

__all__ = [
    "Telemetry",
    "NULL_TRACER", "Counters", "NullTracer", "Span", "TraceEvent",
    "Tracer", "get_tracer",
]
