"""The Telemetry report: a frozen, JSON-ready snapshot of one run.

A :class:`Telemetry` is what the harness hands back on
``Measurement.telemetry`` and what ``repro stats``/``--json`` serialize:
phase wall-times, the full counter registry, and (when event collection
was on) the Chrome-trace event log.  Everything in :meth:`to_dict` is
plain ``str``/``int``/``float``/``dict``/``list`` so it round-trips
through ``json.dumps`` unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .tracer import Tracer

#: (counter prefix, section heading) for :meth:`Telemetry.summary`.
_SECTIONS = (
    ("cache.", "compile cache"),
    ("opt.", "classical optimizer"),
    ("trace.", "trace compiler"),
    ("sched.", "list scheduler"),
    ("select.", "trace selector"),
    ("disambig.", "disambiguator"),
    ("sim.scalar.", "scalar baseline"),
    ("sim.scoreboard.", "scoreboard baseline"),
    ("sim.vliw.", "VLIW simulator"),
    ("sim.icache.", "instruction cache"),
)


@dataclass
class Telemetry:
    """Structured results of one traced run.

    Attributes:
        phases: span name -> total wall-time in seconds.
        counters: flat dotted-name counter totals.
        events: Chrome trace-event dicts (empty unless events were on).
        meta: free-form context (kernel, n, machine config, ...).
    """

    phases: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer: Tracer, meta: dict | None = None
                    ) -> "Telemetry":
        return cls(phases=tracer.phase_times(),
                   counters=tracer.counters.as_dict(),
                   events=tracer.chrome_trace(),
                   meta=dict(meta or {}))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready report (events omitted — use :meth:`write_events`)."""
        return {"meta": dict(self.meta),
                "phases": dict(self.phases),
                "counters": dict(self.counters)}

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def chrome_trace(self) -> list[dict]:
        return list(self.events)

    def write_events(self, path) -> int:
        """Write the Chrome-trace event file; returns the event count."""
        events = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(events, handle)
        return len(events)

    # ------------------------------------------------------------------
    def counter(self, name: str, default: float = 0):
        return self.counters.get(name, default)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = []
        if self.meta:
            ctx = ", ".join(f"{k}={v}" for k, v in self.meta.items()
                            if not isinstance(v, (dict, list)))
            lines.append(f"telemetry [{ctx}]")
        else:
            lines.append("telemetry")
        if self.phases:
            lines.append("phases (ms):")
            width = max(len(name) for name in self.phases)
            for name, seconds in self.phases.items():
                lines.append(f"  {name.ljust(width)}  {seconds * 1e3:8.3f}")
        shown: set[str] = set()
        for prefix, heading in _SECTIONS:
            items = {k: v for k, v in self.counters.items()
                     if k.startswith(prefix)}
            if not items:
                continue
            shown |= set(items)
            lines.append(f"{heading}:")
            width = max(len(k) for k in items)
            for name, value in items.items():
                lines.append(f"  {name.ljust(width)}  {_fmt(value)}")
        rest = {k: v for k, v in self.counters.items() if k not in shown}
        if rest:
            lines.append("other counters:")
            width = max(len(k) for k in rest)
            for name, value in rest.items():
                lines.append(f"  {name.ljust(width)}  {_fmt(value)}")
        if self.events:
            lines.append(f"events: {len(self.events)} recorded")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))
