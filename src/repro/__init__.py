"""repro — a reproduction of the Multiflow TRACE VLIW and its Trace
Scheduling compacting compiler (Colwell, Nix, O'Donnell, Papworth, Rodman,
ASPLOS 1987).

The package contains, built from scratch:

* an IR with builder, textual format and reference interpreter (``repro.ir``);
* a tiny C-like front end (``repro.frontend``);
* classical optimizations, loop unrolling and inlining (``repro.opt``);
* the memory-bank disambiguator (``repro.disambig``);
* the TRACE machine model and instruction encoding (``repro.machine``);
* the Trace Scheduling compiler itself (``repro.trace``);
* beat-accurate TRACE, scalar, and scoreboard simulators (``repro.sim``);
* deterministic fault injection and precise-interrupt checkpoints
  (``repro.faults``);
* workloads and the experiment harness — including the fault-injecting
  differential fuzzer (``repro.workloads``, ``repro.harness``).

Quickstart::

    from repro import measure
    result = measure("daxpy", n=64, telemetry=True)
    print(result.row())
    print(result.telemetry.summary())
"""

from .harness import (Measurement, MeasureSpec, compare_kernel, measure,
                      run_measurement)
from .obs import Telemetry, Tracer

__all__ = [
    "Measurement", "MeasureSpec", "compare_kernel", "measure",
    "run_measurement", "Telemetry", "Tracer",
]

__version__ = "1.1.0"
