"""Architectural snapshots for precise interrupts and context switches.

When the TRACE takes an interrupt it simply stops issuing and lets the
self-draining pipelines empty — after at most the deepest pipeline's
latency, *every* in-flight result has landed in its register and the
architectural state is just: register files, PC (per active frame, since
calls save/restore by convention), and memory.  No scoreboard, reorder
buffer, or shadow state exists to capture (paper section 4: "the
pipelines drain and the machine may then be stopped").

:class:`MachineCheckpoint` is that state, tagged with a hardware ASID
from :class:`~repro.sim.context.ProcessTagTable` so checkpoint/resume
composes with the tagged-TLB context-switch model.  Resuming a checkpoint
on a fresh :class:`~repro.sim.vliw.VliwSimulator` reproduces the
uninterrupted run bit-identically (the fuzz harness asserts exactly
this).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FrameState:
    """One suspended call frame: enough to re-enter the function.

    ``pending`` is empty in every frame of a drained machine — that is
    the whole point of self-draining pipelines — but the field is kept so
    a checkpoint can assert the invariant rather than assume it.
    """

    function: str
    regs: dict = field(default_factory=dict)
    pc: int = 0
    start_beat: int = 0
    ret_dest: object = None
    bank_busy: dict = field(default_factory=dict)
    pending: list = field(default_factory=list)


@dataclass
class MachineCheckpoint:
    """Complete architectural state of a drained machine."""

    #: beat at which the machine stopped (after the drain)
    beat: int
    #: call stack, outermost first
    frames: list[FrameState]
    #: full data-memory contents at the stop point
    memory_bytes: bytes
    #: simulator statistics up to the stop point (resume continues them)
    stats: object
    #: hardware process tag assigned at snapshot time
    asid: int = 0
    #: beats spent draining the pipelines for this snapshot
    drain_beats: int = 0

    def __post_init__(self) -> None:
        for frame in self.frames:
            if frame.pending:
                raise ValueError(
                    f"checkpoint of an undrained machine: frame "
                    f"{frame.function} has {len(frame.pending)} in-flight "
                    f"writes")

    @property
    def depth(self) -> int:
        return len(self.frames)
