"""Deterministic fault-injection plans and their runtime driver.

The paper's robustness story (sections 4-7) rests on hardware devices —
self-draining pipelines, dismissable loads, the bank-stall, history-queue
TLB replay — that only matter when something *goes wrong*.  This module
makes things go wrong on purpose, deterministically:

* :class:`FaultEvent` — one scheduled fault: an asynchronous interrupt
  (drain-and-resume or drain-and-checkpoint), a forced TLB flush, a
  poisoned memory bank (busy for extra beats), or a trap-mode FP
  exception.
* :class:`InjectionPlan` — an ordered set of events keyed by machine
  beat.  :meth:`InjectionPlan.random` derives one from a seed, so a fuzz
  run is reproducible from ``(program seed, fault seed)`` alone.
* :class:`FaultInjector` — the runtime driver the simulators poll at
  instruction boundaries; it hands out due events exactly once and keeps
  a log of what fired (and when) for reports and assertions.

Every fault here is either architecturally invisible (timing-only: TLB
flush, bank poison, drain-and-resume interrupt) or a precise trap
(checkpoint interrupt, FP trap).  The differential fuzz harness leans on
that split: timing faults must leave final state bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: FaultEvent.kind values
INTERRUPT = "interrupt"          # drain pipelines, service, resume
CHECKPOINT = "checkpoint"        # drain pipelines, snapshot state, stop
TLB_FLUSH = "tlb_flush"          # drop every resident translation
BANK_POISON = "bank_poison"      # one bank busy for extra beats
FP_TRAP = "fp_trap"              # precise trap-mode FP exception

KINDS = (INTERRUPT, CHECKPOINT, TLB_FLUSH, BANK_POISON, FP_TRAP)

#: beats charged for interrupt service (trap dispatch + handler + return)
#: on a drain-and-resume interrupt; the *drain* itself is simulated, not
#: charged (see sim/context.py INTERRUPT_DRAIN_BEATS for the cost model)
SERVICE_BEATS = 30


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``beat`` is the earliest machine beat at which the event may fire;
    delivery happens at the first *instruction boundary* at or after it
    (interrupts on the TRACE are taken between long instructions — the
    self-draining pipelines make that the only precise point).
    """

    beat: int
    kind: str
    #: bank index for BANK_POISON
    bank: int = 0
    #: extra busy beats for BANK_POISON
    busy_beats: int = 0
    #: service cost for INTERRUPT
    service_beats: int = SERVICE_BEATS
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class InjectionPlan:
    """An ordered, deterministic set of fault events."""

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.beat)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    @classmethod
    def interrupt_at(cls, beat: int, checkpoint: bool = False,
                     service_beats: int = SERVICE_BEATS) -> "InjectionPlan":
        """A single interrupt (optionally a checkpointing one)."""
        kind = CHECKPOINT if checkpoint else INTERRUPT
        return cls([FaultEvent(beat, kind, service_beats=service_beats)])

    @classmethod
    def random(cls, seed: int, horizon_beats: int,
               n_interrupts: int = 2, n_tlb_flushes: int = 1,
               n_bank_poisons: int = 2, total_banks: int = 64,
               max_busy_beats: int = 16) -> "InjectionPlan":
        """A seed-derived plan of architecturally-invisible faults.

        Only timing faults are generated (no checkpoints, no FP traps):
        the result is safe to inject into a differential run that asserts
        bit-identical final state.
        """
        rng = random.Random(seed)
        horizon = max(2, horizon_beats)
        events = []
        for _ in range(n_interrupts):
            events.append(FaultEvent(rng.randrange(horizon), INTERRUPT))
        for _ in range(n_tlb_flushes):
            events.append(FaultEvent(rng.randrange(horizon), TLB_FLUSH))
        for _ in range(n_bank_poisons):
            events.append(FaultEvent(
                rng.randrange(horizon), BANK_POISON,
                bank=rng.randrange(total_banks),
                busy_beats=rng.randint(1, max_busy_beats)))
        return cls(events)


class FaultInjector:
    """Runtime driver: hands each planned event out exactly once.

    The simulators poll :meth:`due` at every instruction boundary with the
    current beat; events whose beat has been reached are returned in plan
    order and moved to :attr:`fired`.
    """

    def __init__(self, plan: InjectionPlan) -> None:
        self.plan = plan
        self._queue = list(plan.events)
        #: (delivery_beat, event) pairs, in delivery order
        self.fired: list[tuple[int, FaultEvent]] = []

    @property
    def pending(self) -> int:
        return len(self._queue)

    def due(self, beat: int) -> list[FaultEvent]:
        """Pop every event whose beat has arrived."""
        if not self._queue or self._queue[0].beat > beat:
            return []
        ready = [e for e in self._queue if e.beat <= beat]
        self._queue = [e for e in self._queue if e.beat > beat]
        self.fired.extend((beat, e) for e in ready)
        return ready
