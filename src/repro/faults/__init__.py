"""Deterministic fault injection and precise-interrupt recovery."""

from .checkpoint import FrameState, MachineCheckpoint
from .plan import (BANK_POISON, CHECKPOINT, FP_TRAP, INTERRUPT, KINDS,
                   SERVICE_BEATS, TLB_FLUSH, FaultEvent, FaultInjector,
                   InjectionPlan)

__all__ = [
    "FrameState", "MachineCheckpoint",
    "BANK_POISON", "CHECKPOINT", "FP_TRAP", "INTERRUPT", "KINDS",
    "SERVICE_BEATS", "TLB_FLUSH", "FaultEvent", "FaultInjector",
    "InjectionPlan",
]
