"""The stable, typed public facade over the compiler and harness.

Everything that *submits work* — the CLI ``measure``/``sweep`` commands,
the ``repro serve`` compile service and its clients, scripts driving the
harness programmatically — builds jobs through the four dataclasses in
this module:

* :class:`CompileRequest` — compile one kernel (no simulation);
* :class:`MeasureRequest` — the full measurement: compile, simulate on
  every executor, cross-check against the reference interpreter;
* :class:`JobStatus` — where a submitted job currently stands;
* :class:`JobResult` — what a finished job produced.

Each round-trips through ``to_json``/``from_json`` as plain
``str``/``int``/``bool``/``dict`` values, so the *wire format of the
service and the in-process API are one schema*: a request built here can
be executed directly (:func:`run_request`), shipped to a worker process
(the runner's ``api`` task handler), or POSTed to a running
``repro serve`` daemon — all three produce the same payload.

Requests use flat primitives (``pairs`` instead of a
:class:`~repro.machine.MachineConfig`, boolean scheduling knobs instead
of a :class:`~repro.trace.SchedulingOptions`) precisely so they stay
JSON-trivial; :meth:`CompileRequest.to_spec` lowers them onto the
internal :class:`~repro.harness.MeasureSpec`.  The content-addressed
:meth:`~CompileRequest.cache_key` is the same key the compile cache and
the service's job dedup use, so "same request" means "same artifact"
at every layer.

The service client lives in :mod:`repro.serve` but is re-exported here
(``repro.api.Client``) so callers need exactly one import.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar

from .errors import ReproError

#: Bump on any incompatible change to the request/result JSON schema.
API_VERSION = 1

#: The lifecycle states a submitted job moves through.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)

_STRATEGIES = ("trace", "pipeline", "auto", "optimal")
_PAIRS = (1, 2, 4)


class ApiError(ReproError):
    """An invalid request or a malformed wire payload."""


def _from_fields(cls, obj: dict):
    """Build ``cls`` from a JSON dict, ignoring unknown keys.

    Unknown keys are tolerated (a newer client may send fields an older
    server does not know); missing required fields surface as
    :class:`ApiError`.
    """
    if not isinstance(obj, dict):
        raise ApiError(f"{cls.__name__}: expected an object, "
                       f"got {type(obj).__name__}")
    known = {f.name for f in fields(cls)}
    kwargs = {k: v for k, v in obj.items() if k in known}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ApiError(f"{cls.__name__}: {exc}") from None


@dataclass(frozen=True)
class CompileRequest:
    """Compile one kernel at one configuration; report compiler stats.

    The compile stage only — no simulation, no output checking.  Useful
    for warming a shared cache or auditing schedules at service scale.
    """

    kernel: str
    n: int = 64
    pairs: int = 4
    unroll: int = 8
    inline: int = 48
    strategy: str = "trace"
    speculation: bool = True
    join_motion: bool = True
    fast_fp: bool = False
    bank_gamble: bool = True
    fortran_args: bool = False
    use_profile: bool = True
    #: heuristic parameters in wire form (the flat dict
    #: :meth:`~repro.sched.HeuristicParams.to_json` emits); None means
    #: DEFAULT.  Kept as a dict so the request stays JSON-trivial; it is
    #: decoded (strictly — unknown fields rejected) by :meth:`validate`
    #: and :meth:`options`.
    params: dict | None = None

    kind: ClassVar[str] = "compile"

    # ------------------------------------------------------------------
    def validate(self) -> "CompileRequest":
        """Raise :class:`ApiError` on anything the harness would reject."""
        from .workloads import ALL_KERNELS

        if self.kernel not in ALL_KERNELS:
            raise ApiError(f"unknown kernel {self.kernel!r}")
        if self.n <= 0:
            raise ApiError(f"problem size must be positive, got {self.n}")
        if self.pairs not in _PAIRS:
            raise ApiError(f"pairs must be one of {_PAIRS}, got {self.pairs}")
        if self.unroll < 0 or self.inline < 0:
            raise ApiError("unroll and inline budgets must be >= 0")
        if self.strategy not in _STRATEGIES:
            raise ApiError(f"strategy must be one of {_STRATEGIES}, "
                           f"got {self.strategy!r}")
        self.heuristic_params()    # strict decode; raises ApiError
        return self

    def heuristic_params(self):
        """The decoded :class:`~repro.sched.HeuristicParams`."""
        from .errors import ParamError
        from .sched import HeuristicParams

        if self.params is None:
            return HeuristicParams.DEFAULT
        try:
            return HeuristicParams.from_json(self.params)
        except ParamError as exc:
            raise ApiError(f"params: {exc}") from None

    # ------------------------------------------------------------------
    def config(self):
        from .machine import MachineConfig

        return MachineConfig.from_pairs(self.pairs)

    def options(self):
        from .trace import SchedulingOptions

        return SchedulingOptions(speculation=self.speculation,
                                 join_motion=self.join_motion,
                                 fast_fp=self.fast_fp,
                                 bank_gamble=self.bank_gamble,
                                 fortran_args=self.fortran_args,
                                 params=self.heuristic_params())

    def to_spec(self, *, telemetry: bool = False, events: bool = False):
        """Lower onto the internal :class:`~repro.harness.MeasureSpec`."""
        from .harness.measure import MeasureSpec

        return MeasureSpec(kernel=self.kernel, n=self.n,
                           config=self.config(), options=self.options(),
                           unroll=self.unroll, inline=self.inline,
                           strategy=self.strategy,
                           use_profile=self.use_profile,
                           check=getattr(self, "check", True),
                           telemetry=telemetry, events=events)

    def cache_key(self) -> str:
        """The content-addressed key this request's compile resolves to.

        Identical to the key :func:`~repro.harness.run_measurement`
        computes inside the cached compile stage, which is what makes
        service-level dedup and the compile cache agree about identity.
        """
        from .cache import compile_key
        from .workloads import get_kernel

        module = get_kernel(self.kernel).build(self.n)
        return compile_key(module, self.config(), self.options(),
                           strategy=self.strategy, unroll=self.unroll,
                           inline=self.inline,
                           use_profile=self.use_profile)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        obj = {"kind": self.kind, "v": API_VERSION}
        obj.update(asdict(self))
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "CompileRequest":
        request = _from_fields(cls, obj)
        kind = obj.get("kind", cls.kind) if isinstance(obj, dict) else None
        if kind != cls.kind:
            raise ApiError(f"{cls.__name__}: kind must be "
                           f"{cls.kind!r}, got {kind!r}")
        return request.validate()


@dataclass(frozen=True)
class MeasureRequest(CompileRequest):
    """The full measurement: compile, run every executor, verify.

    ``check=True`` (the default) cross-checks scalar, scoreboard, and
    VLIW outputs against the reference interpreter — divergence fails
    the job rather than returning wrong numbers.
    """

    check: bool = True

    kind: ClassVar[str] = "measure"


#: request ``kind`` -> dataclass, for wire-side dispatch.
REQUEST_KINDS: dict[str, type] = {
    CompileRequest.kind: CompileRequest,
    MeasureRequest.kind: MeasureRequest,
}


def request_from_json(obj: dict) -> CompileRequest:
    """Decode one request of any kind from its JSON form."""
    if not isinstance(obj, dict):
        raise ApiError(f"request: expected an object, "
                       f"got {type(obj).__name__}")
    kind = obj.get("kind", MeasureRequest.kind)
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise ApiError(f"unknown request kind {kind!r} "
                       f"(expected one of {sorted(REQUEST_KINDS)})")
    return cls.from_json(obj)


# ----------------------------------------------------------------------
# job status and result
# ----------------------------------------------------------------------
@dataclass
class JobStatus:
    """Where one submitted job stands right now."""

    job_id: str
    state: str
    kind: str
    kernel: str
    key: str
    #: this job was collapsed onto another job with the same cache key
    deduped: bool = False
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    error: str | None = None
    #: dispatch attempts charged so far (journal replay included)
    attempts: int = 0
    #: this job was rebuilt from the daemon's journal after a restart
    recovered: bool = False

    def to_json(self) -> dict:
        return {"v": API_VERSION, **asdict(self)}

    @classmethod
    def from_json(cls, obj: dict) -> "JobStatus":
        return _from_fields(cls, obj)


@dataclass
class JobResult:
    """What one finished job produced.

    ``result`` is the JSON-ready report payload — for a measure job the
    same object :func:`~repro.harness.measurement_report` builds, for a
    compile job the compile report — and is byte-identical across every
    client that submitted the same work (dedup aliases share the primary
    job's payload verbatim).  ``counters`` carries the job's private
    telemetry registry; a job served from cached or deduplicated work
    reports ``cache.hit`` there, exactly like a warm in-process run.
    """

    job_id: str
    ok: bool
    kind: str
    key: str
    result: dict | None = None
    error: str | None = None
    counters: dict = None  # type: ignore[assignment]
    duration_s: float = 0.0
    cache_hit: bool = False

    def __post_init__(self) -> None:
        if self.counters is None:
            self.counters = {}

    def to_json(self) -> dict:
        return {"v": API_VERSION, **asdict(self)}

    @classmethod
    def from_json(cls, obj: dict) -> "JobResult":
        return _from_fields(cls, obj)


# ----------------------------------------------------------------------
# in-process execution
# ----------------------------------------------------------------------
def compile_report(spec, program, compile_stats) -> dict:
    """A compile-only job's JSON payload (the measure twin is
    :func:`~repro.harness.measurement_report`)."""
    from .harness.report import config_report

    return {
        "kernel": spec.kernel,
        "n": spec.n,
        "config": config_report(spec.config),
        "functions": {name: {"instructions": len(cf.instructions),
                             "ops": cf.op_count()}
                      for name, cf in sorted(program.functions.items())},
        "compile": (asdict(compile_stats)
                    if compile_stats is not None else None),
    }


def run_request(request: CompileRequest, tracer=None, cache=None) -> dict:
    """Execute one request in this process; the JSON-ready payload.

    This is the single execution path behind every transport: the CLI
    calls it directly, the work-queue executor calls it in workers, and
    ``repro serve`` dispatches queued jobs through it.  Identical
    requests therefore produce identical payloads no matter which door
    they came in through.
    """
    from .harness.measure import run_compile, run_measurement
    from .harness.report import measurement_report

    request.validate()
    spec = request.to_spec()
    if request.kind == CompileRequest.kind:
        program, compile_stats = run_compile(spec, tracer=tracer,
                                             cache=cache)
        return compile_report(spec, program, compile_stats)
    return measurement_report(run_measurement(spec, tracer=tracer,
                                              cache=cache))


def execute_payload(request_obj: dict, use_cache: bool,
                    cache_dir: str | None, tracer=None) -> dict:
    """The worker-side entry the runner's ``api`` handler calls.

    Takes the request in wire form (a plain dict — exactly what crossed
    the socket or the process boundary), resolves the per-process
    compile cache, and returns the JSON-ready payload.
    """
    from .cache import process_cache

    request = request_from_json(request_obj)
    cache = process_cache(cache_dir) if use_cache else None
    return run_request(request, tracer=tracer, cache=cache)


def dumps(obj: Any, **kwargs) -> str:
    """Canonical JSON encoding (sorted keys) for payload comparison."""
    return json.dumps(obj, sort_keys=True, **kwargs)


def __getattr__(name: str):
    # Client and its error types live in repro.serve; re-exported lazily
    # so importing repro.api never drags the HTTP machinery in.
    if name in ("Client", "ServerBusy", "ServerUnavailable"):
        from . import serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "API_VERSION", "ApiError",
    "JOB_QUEUED", "JOB_RUNNING", "JOB_DONE", "JOB_FAILED", "JOB_STATES",
    "CompileRequest", "MeasureRequest", "REQUEST_KINDS",
    "request_from_json",
    "JobStatus", "JobResult",
    "compile_report", "run_request", "execute_payload", "dumps",
    "Client", "ServerBusy", "ServerUnavailable",
]
