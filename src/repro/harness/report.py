"""Report rendering: plain-text tables and machine-readable JSON.

The benches print the same rows/series the paper reports; this module
keeps that output consistent and diff-friendly.  The JSON builders back
``repro stats``/``--json`` — one object per run, round-trippable through
``json.dumps``, so results can be diffed, archived, and compared across
PRs.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Iterable, Sequence


def format_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    cells = [[_fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [max(len(h), *(len(row[i]) for row in cells))
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def print_table(rows: Sequence[dict], title: str | None = None) -> None:
    print(format_table(rows, title))
    print()


def config_report(config) -> dict:
    """A MachineConfig as a JSON-ready dict (plus derived figures)."""
    report = asdict(config)
    report["name"] = f"TRACE {7 * config.n_pairs}/200"
    report["ops_per_instruction"] = config.ops_per_instruction
    report["total_banks"] = config.total_banks
    return report


def measurement_report(measurement) -> dict:
    """One measurement as a single JSON-ready object.

    Schema: ``{"kernel", "n", "config": {...}, "results": {...},
    "compile": {...}|null, "telemetry": {...}|null}``.
    """
    report = {
        "kernel": measurement.kernel,
        "n": measurement.n,
        "config": config_report(measurement.config),
        "results": measurement.row(),
        "compile": (asdict(measurement.compile_stats)
                    if measurement.compile_stats is not None else None),
        "telemetry": (measurement.telemetry.to_dict()
                      if measurement.telemetry is not None else None),
    }
    return report


def sweep_report(measurements: Sequence, telemetry=None) -> dict:
    """A whole sweep as one JSON object (rows + shared telemetry)."""
    rows = [measurement_report(m) for m in measurements]
    return {"kernels": [m.kernel for m in measurements],
            "rows": rows,
            "telemetry": telemetry.to_dict()
            if telemetry is not None else None}
