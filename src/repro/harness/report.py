"""Plain-text table rendering for benchmark output.

The benches print the same rows/series the paper reports; this module
keeps that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    cells = [[_fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [max(len(h), *(len(row[i]) for row in cells))
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def print_table(rows: Sequence[dict], title: str | None = None) -> None:
    print(format_table(rows, title))
    print()
