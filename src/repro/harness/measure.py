"""End-to-end measurement: build, optimize, compile, simulate, compare.

This is the experiment driver behind every benchmark: it runs a kernel on
the reference interpreter (ground truth), on the scalar and scoreboard
baselines (conventionally compiled code), and on the trace-scheduled VLIW
(fully optimized code), verifies all outputs agree, and reports timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ReproError
from ..ir import Interpreter, MemoryImage, Module, Profile, run_module
from ..machine import CompiledProgram, MachineConfig, TRACE_28_200
from ..opt import classical_pipeline
from ..sim import (ScalarStats, ScoreboardStats, VliwStats, run_compiled,
                   run_scalar, run_scoreboard)
from ..trace import SchedulingOptions, TraceCompiler
from ..workloads import Kernel, get_kernel


@dataclass
class Measurement:
    """All results from measuring one kernel at one configuration."""

    kernel: str
    n: int
    config: MachineConfig
    scalar: ScalarStats
    scoreboard: ScoreboardStats
    vliw: VliwStats
    compile_stats: object = None        # TraceCompileStats
    program: CompiledProgram | None = None

    @property
    def scoreboard_speedup(self) -> float:
        return self.scalar.beats / self.scoreboard.beats

    @property
    def vliw_speedup(self) -> float:
        return self.scalar.beats / self.vliw.beats

    def row(self) -> dict:
        return {
            "kernel": self.kernel,
            "n": self.n,
            "scalar_beats": self.scalar.beats,
            "scoreboard_beats": self.scoreboard.beats,
            "vliw_beats": self.vliw.beats,
            "scoreboard_speedup": round(self.scoreboard_speedup, 2),
            "vliw_speedup": round(self.vliw_speedup, 2),
        }


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _outputs(kernel: Kernel, module: Module, memory: MemoryImage):
    out = {}
    for name, elem in kernel.outputs:
        obj = module.data[name]
        out[name] = memory.read_array(name, obj.size // elem, elem)
    return out


def _outputs_equal(a: dict, b: dict) -> bool:
    return (a.keys() == b.keys()
            and all(len(a[k]) == len(b[k])
                    and all(_values_equal(x, y)
                            for x, y in zip(a[k], b[k])) for k in a))


def prepare_modules(kernel: Kernel, n: int, unroll: int = 8,
                    inline: int = 48) -> tuple[Module, Module]:
    """(baseline module, VLIW module).

    The baseline gets the "conventional compiler" treatment (classical
    optimizations, no unrolling); the VLIW module additionally gets the
    unrolling/inlining that feeds trace scheduling.
    """
    baseline = kernel.build(n)
    classical_pipeline(unroll_factor=0, inline_budget=0).run(baseline)
    vliw_module = kernel.build(n)
    classical_pipeline(unroll_factor=unroll,
                       inline_budget=inline).run(vliw_module)
    return baseline, vliw_module


def train_profile(module: Module, func: str, args) -> Profile:
    """Run the interpreter once to collect branch statistics."""
    interp = Interpreter(module)
    interp.run(func, args)
    return interp.profile


def measure(kernel_name: str, n: int,
            config: MachineConfig = TRACE_28_200,
            options: SchedulingOptions | None = None,
            unroll: int = 8, inline: int = 48,
            use_profile: bool = True,
            check: bool = True) -> Measurement:
    """Measure one kernel end to end; raises if any executor diverges."""
    kernel = get_kernel(kernel_name)
    args = kernel.make_args(n)
    options = options or SchedulingOptions()

    baseline, vliw_module = prepare_modules(kernel, n, unroll, inline)
    reference = run_module(kernel.build(n), kernel.func, args)
    ref_out = _outputs(kernel, baseline, reference.memory)

    scalar = run_scalar(baseline, kernel.func, args, config)
    scoreboard = run_scoreboard(baseline, kernel.func, args, config)

    profile = train_profile(vliw_module, kernel.func, args) \
        if use_profile else None
    compiler = TraceCompiler(vliw_module, config, options, profile)
    program = compiler.compile_module()
    vliw = run_compiled(program, vliw_module, kernel.func, args)

    if check:
        for name, result in (("scalar", scalar), ("scoreboard", scoreboard),
                             ("vliw", vliw)):
            if kernel.returns_value and not _values_equal(result.value,
                                                          reference.value):
                raise ReproError(
                    f"{kernel_name}: {name} returned {result.value!r},"
                    f" expected {reference.value!r}")
            module = baseline if name != "vliw" else vliw_module
            if not _outputs_equal(_outputs(kernel, module, result.memory),
                                  ref_out):
                raise ReproError(f"{kernel_name}: {name} memory diverged")

    return Measurement(kernel_name, n, config, scalar.stats,
                       scoreboard.stats, vliw.stats,
                       compiler.stats.get(kernel.func), program)


def compare_kernel(kernel_name: str, n: int = 64, **kwargs) -> Measurement:
    """Alias used by the README quickstart."""
    return measure(kernel_name, n, **kwargs)
