"""End-to-end measurement: build, optimize, compile, simulate, compare.

This is the experiment driver behind every benchmark: it runs a kernel on
the reference interpreter (ground truth), on the scalar and scoreboard
baselines (conventionally compiled code), and on the trace-scheduled VLIW
(fully optimized code), verifies all outputs agree, and reports timing.

Two call styles are supported:

* the classic positional form — ``measure("daxpy", 64, unroll=8)`` —
  unchanged since the first release, and
* the spec form — ``run_measurement(MeasureSpec(kernel="daxpy", n=64,
  telemetry=True))`` — one keyword-only options object that the CLI,
  benchmarks, and sweeps can build, store, and replay.

With ``telemetry=True`` the whole pipeline runs under a
:class:`~repro.obs.Tracer` and the returned
:attr:`Measurement.telemetry` carries per-phase wall-times, the full
counter registry, and (with ``events=True``) a Chrome-trace event log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ReproError
from ..ir import Interpreter, MemoryImage, Module, Profile, run_module
from ..machine import CompiledProgram, MachineConfig, TRACE_28_200
from ..obs import NULL_TRACER, Telemetry, Tracer
from ..opt import classical_pipeline
from ..sim import (ScalarStats, ScoreboardStats, VliwStats, run_compiled,
                   run_scalar, run_scoreboard)
from ..trace import SchedulingOptions, TraceCompiler, TraceCompileStats
from ..workloads import Kernel, get_kernel


@dataclass
class MeasureSpec:
    """Everything one measurement needs, as a single keyword-only record.

    Args:
        kernel: workload name (see ``repro.workloads.ALL_KERNELS``).
        n: problem size.
        config: target machine configuration.
        options: code-motion knobs for the trace scheduler.
        unroll: unroll factor fed to the VLIW module (0 disables).
        inline: inline budget in callee ops (0 disables).
        strategy: loop engine — ``"trace"`` (unroll + trace schedule),
            ``"pipeline"`` (modulo-schedule matching counted loops), or
            ``"auto"`` (pipeline only when its II beats the trace
            scheduler's steady-state estimate).  Pipelining targets
            *rolled* loops, so pair it with ``unroll=0``.
        use_profile: train a branch profile on the interpreter first.
        check: verify every executor against the reference interpreter.
        telemetry: collect phase timings and counters on the result.
        events: also keep the per-beat event log (implies telemetry).
    """

    kernel: str
    n: int = 64
    config: MachineConfig = TRACE_28_200
    options: SchedulingOptions | None = None
    unroll: int = 8
    inline: int = 48
    strategy: str = "trace"
    use_profile: bool = True
    check: bool = True
    telemetry: bool = False
    events: bool = False


@dataclass
class Measurement:
    """All results from measuring one kernel at one configuration."""

    kernel: str
    n: int
    config: MachineConfig
    scalar: ScalarStats
    scoreboard: ScoreboardStats
    vliw: VliwStats
    compile_stats: TraceCompileStats | None = None
    program: CompiledProgram | None = None
    telemetry: Telemetry | None = None

    @property
    def scoreboard_speedup(self) -> float:
        return self.scalar.beats / self.scoreboard.beats

    @property
    def vliw_speedup(self) -> float:
        return self.scalar.beats / self.vliw.beats

    def row(self) -> dict:
        out = {
            "kernel": self.kernel,
            "n": self.n,
            "scalar_beats": self.scalar.beats,
            "scoreboard_beats": self.scoreboard.beats,
            "vliw_beats": self.vliw.beats,
            "scoreboard_speedup": round(self.scoreboard_speedup, 2),
            "vliw_speedup": round(self.vliw_speedup, 2),
        }
        if self.compile_stats is not None \
                and self.compile_stats.pipelined_loops:
            out["pipelined_ii"] = [
                loop.ii for loop in self.compile_stats.pipelined_loops]
        return out


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _outputs(kernel: Kernel, module: Module, memory: MemoryImage):
    out = {}
    for name, elem in kernel.outputs:
        obj = module.data[name]
        out[name] = memory.read_array(name, obj.size // elem, elem)
    return out


def _outputs_equal(a: dict, b: dict) -> bool:
    return (a.keys() == b.keys()
            and all(len(a[k]) == len(b[k])
                    and all(_values_equal(x, y)
                            for x, y in zip(a[k], b[k])) for k in a))


def prepare_modules(kernel: Kernel, n: int, unroll: int = 8,
                    inline: int = 48, tracer=None) -> tuple[Module, Module]:
    """(baseline module, VLIW module).

    The baseline gets the "conventional compiler" treatment (classical
    optimizations, no unrolling); the VLIW module additionally gets the
    unrolling/inlining that feeds trace scheduling.
    """
    baseline = kernel.build(n)
    classical_pipeline(unroll_factor=0, inline_budget=0).run(baseline)
    vliw_module = kernel.build(n)
    classical_pipeline(unroll_factor=unroll, inline_budget=inline,
                       tracer=tracer).run(vliw_module)
    return baseline, vliw_module


def train_profile(module: Module, func: str, args) -> Profile:
    """Run the interpreter once to collect branch statistics."""
    interp = Interpreter(module)
    interp.run(func, args)
    return interp.profile


def run_measurement(spec: MeasureSpec,
                    tracer: Tracer | None = None) -> Measurement:
    """Measure one kernel end to end; raises if any executor diverges.

    A caller-supplied ``tracer`` wins over ``spec.telemetry`` (the sweep
    command threads one tracer through every kernel); otherwise a fresh
    tracer is created when the spec asks for telemetry.
    """
    own_tracer = tracer is None and (spec.telemetry or spec.events)
    if own_tracer:
        tracer = Tracer(events=spec.events)
    trc = tracer if tracer is not None else NULL_TRACER

    kernel = get_kernel(spec.kernel)
    args = kernel.make_args(spec.n)
    options = spec.options or SchedulingOptions()

    with trc.span("measure.prepare", cat="harness", kernel=spec.kernel):
        baseline, vliw_module = prepare_modules(
            kernel, spec.n, spec.unroll, spec.inline, tracer=trc)
    with trc.span("measure.reference", cat="harness"):
        reference = run_module(kernel.build(spec.n), kernel.func, args)
    ref_out = _outputs(kernel, baseline, reference.memory)

    with trc.span("sim.scalar", cat="harness"):
        scalar = run_scalar(baseline, kernel.func, args, spec.config,
                            tracer=trc)
    with trc.span("sim.scoreboard", cat="harness"):
        scoreboard = run_scoreboard(baseline, kernel.func, args, spec.config,
                                    tracer=trc)

    with trc.span("measure.profile", cat="harness"):
        profile = train_profile(vliw_module, kernel.func, args) \
            if spec.use_profile else None
    with trc.span("trace.compile", cat="harness", kernel=spec.kernel):
        compiler = TraceCompiler(vliw_module, spec.config, options, profile,
                                 tracer=trc, strategy=spec.strategy)
        program = compiler.compile_module()
    with trc.span("sim.vliw", cat="harness"):
        vliw = run_compiled(program, vliw_module, kernel.func, args,
                            tracer=trc)

    if spec.check:
        with trc.span("measure.check", cat="harness"):
            for name, result in (("scalar", scalar),
                                 ("scoreboard", scoreboard),
                                 ("vliw", vliw)):
                if kernel.returns_value and not _values_equal(
                        result.value, reference.value):
                    raise ReproError(
                        f"{spec.kernel}: {name} returned {result.value!r},"
                        f" expected {reference.value!r}")
                module = baseline if name != "vliw" else vliw_module
                if not _outputs_equal(
                        _outputs(kernel, module, result.memory), ref_out):
                    raise ReproError(
                        f"{spec.kernel}: {name} memory diverged")

    telemetry = None
    if own_tracer or (tracer is not None and tracer.enabled
                      and spec.telemetry):
        telemetry = Telemetry.from_tracer(trc, meta={
            "kernel": spec.kernel, "n": spec.n,
            "config": f"TRACE {7 * spec.config.n_pairs}/200",
            "unroll": spec.unroll, "use_profile": spec.use_profile})
    return Measurement(spec.kernel, spec.n, spec.config, scalar.stats,
                       scoreboard.stats, vliw.stats,
                       compiler.stats.get(kernel.func), program,
                       telemetry)


def measure(kernel_name: str, n: int = 64,
            config: MachineConfig = TRACE_28_200,
            options: SchedulingOptions | None = None,
            unroll: int = 8, inline: int = 48,
            use_profile: bool = True,
            check: bool = True, *,
            strategy: str = "trace",
            telemetry: bool = False, events: bool = False,
            tracer: Tracer | None = None) -> Measurement:
    """Positional-compatibility shim over :func:`run_measurement`.

    The original ``measure(kernel, n, config, ...)`` call shape keeps
    working; new options (``telemetry``, ``events``, ``tracer``) are
    keyword-only and collected into a :class:`MeasureSpec`.
    """
    spec = MeasureSpec(kernel=kernel_name, n=n, config=config,
                       options=options, unroll=unroll, inline=inline,
                       strategy=strategy,
                       use_profile=use_profile, check=check,
                       telemetry=telemetry, events=events)
    return run_measurement(spec, tracer=tracer)


def compare_kernel(kernel_name: str, n: int = 64, **kwargs) -> Measurement:
    """Alias used by the README quickstart."""
    return measure(kernel_name, n, **kwargs)
