"""End-to-end measurement: build, optimize, compile, simulate, compare.

This is the experiment driver behind every benchmark: it runs a kernel on
the reference interpreter (ground truth), on the scalar and scoreboard
baselines (conventionally compiled code), and on the trace-scheduled VLIW
(fully optimized code), verifies all outputs agree, and reports timing.

Two call styles are supported:

* the classic positional form — ``measure("daxpy", 64, unroll=8)`` —
  unchanged since the first release, and
* the spec form — ``run_measurement(MeasureSpec(kernel="daxpy", n=64,
  telemetry=True))`` — one keyword-only options object that the CLI,
  benchmarks, and sweeps can build, store, and replay.

With ``telemetry=True`` the whole pipeline runs under a
:class:`~repro.obs.Tracer` and the returned
:attr:`Measurement.telemetry` carries per-phase wall-times, the full
counter registry, and (with ``events=True``) a Chrome-trace event log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cache import compile_key
from ..errors import ReproError
from ..ir import Interpreter, MemoryImage, Module, Profile, run_module
from ..machine import CompiledProgram, MachineConfig, TRACE_28_200
from ..obs import NULL_TRACER, Telemetry, Tracer
from ..obs.tracer import TraceEvent
from ..opt import classical_pipeline
from ..sim import (BatchLane, BatchVliwSimulator, ScalarStats,
                   ScoreboardStats, VliwStats, run_compiled, run_scalar,
                   run_scoreboard)
from ..sim.compile import ensure_program_source
from ..trace import SchedulingOptions, TraceCompiler, TraceCompileStats
from ..workloads import Kernel, get_kernel


@dataclass
class MeasureSpec:
    """Everything one measurement needs, as a single keyword-only record.

    Args:
        kernel: workload name (see ``repro.workloads.ALL_KERNELS``).
        n: problem size.
        config: target machine configuration.
        options: code-motion knobs for the trace scheduler.
        unroll: unroll factor fed to the VLIW module (0 disables).
        inline: inline budget in callee ops (0 disables).
        strategy: loop engine — ``"trace"`` (unroll + trace schedule),
            ``"pipeline"`` (modulo-schedule matching counted loops), or
            ``"auto"`` (pipeline only when its II beats the trace
            scheduler's steady-state estimate).  Pipelining targets
            *rolled* loops, so pair it with ``unroll=0``.
        use_profile: train a branch profile on the interpreter first.
        check: verify every executor against the reference interpreter.
        telemetry: collect phase timings and counters on the result.
        events: also keep the per-beat event log (implies telemetry).
    """

    kernel: str
    n: int = 64
    config: MachineConfig = TRACE_28_200
    options: SchedulingOptions | None = None
    unroll: int = 8
    inline: int = 48
    strategy: str = "trace"
    use_profile: bool = True
    check: bool = True
    telemetry: bool = False
    events: bool = False


@dataclass
class Measurement:
    """All results from measuring one kernel at one configuration."""

    kernel: str
    n: int
    config: MachineConfig
    scalar: ScalarStats
    scoreboard: ScoreboardStats
    vliw: VliwStats
    compile_stats: TraceCompileStats | None = None
    program: CompiledProgram | None = None
    telemetry: Telemetry | None = None

    @property
    def scoreboard_speedup(self) -> float:
        return self.scalar.beats / self.scoreboard.beats

    @property
    def vliw_speedup(self) -> float:
        return self.scalar.beats / self.vliw.beats

    def row(self) -> dict:
        out = {
            "kernel": self.kernel,
            "n": self.n,
            "scalar_beats": self.scalar.beats,
            "scoreboard_beats": self.scoreboard.beats,
            "vliw_beats": self.vliw.beats,
            "scoreboard_speedup": round(self.scoreboard_speedup, 2),
            "vliw_speedup": round(self.vliw_speedup, 2),
        }
        if self.compile_stats is not None \
                and self.compile_stats.pipelined_loops:
            out["pipelined_ii"] = [
                loop.ii for loop in self.compile_stats.pipelined_loops]
        return out


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _outputs(kernel: Kernel, module: Module, memory: MemoryImage):
    out = {}
    for name, elem in kernel.outputs:
        obj = module.data[name]
        out[name] = memory.read_array(name, obj.size // elem, elem)
    return out


def _outputs_equal(a: dict, b: dict) -> bool:
    return (a.keys() == b.keys()
            and all(len(a[k]) == len(b[k])
                    and all(_values_equal(x, y)
                            for x, y in zip(a[k], b[k])) for k in a))


def prepare_modules(kernel: Kernel, n: int, unroll: int = 8,
                    inline: int = 48, tracer=None) -> tuple[Module, Module]:
    """(baseline module, VLIW module).

    The baseline gets the "conventional compiler" treatment (classical
    optimizations, no unrolling); the VLIW module additionally gets the
    unrolling/inlining that feeds trace scheduling.
    """
    baseline = kernel.build(n)
    classical_pipeline(unroll_factor=0, inline_budget=0).run(baseline)
    vliw_module = kernel.build(n)
    classical_pipeline(unroll_factor=unroll, inline_budget=inline,
                       tracer=tracer).run(vliw_module)
    return baseline, vliw_module


def train_profile(module: Module, func: str, args) -> Profile:
    """Run the interpreter once to collect branch statistics."""
    interp = Interpreter(module)
    interp.run(func, args)
    return interp.profile


def _compile_stage(spec: MeasureSpec, kernel: Kernel, args, options,
                   trc) -> tuple[Module, Module, CompiledProgram,
                                 TraceCompileStats | None]:
    """The compile-side work of one measurement (the cacheable part):
    classical pipelines, profile training, and trace compilation."""
    with trc.span("measure.prepare", cat="harness", kernel=spec.kernel):
        baseline, vliw_module = prepare_modules(
            kernel, spec.n, spec.unroll, spec.inline, tracer=trc)
    with trc.span("measure.profile", cat="harness"):
        profile = train_profile(vliw_module, kernel.func, args) \
            if spec.use_profile else None
    with trc.span("trace.compile", cat="harness", kernel=spec.kernel):
        compiler = TraceCompiler(vliw_module, spec.config, options, profile,
                                 tracer=trc, strategy=spec.strategy)
        program = compiler.compile_module()
    return baseline, vliw_module, program, compiler.stats.get(kernel.func)


def _cached_compile_stage(spec: MeasureSpec, kernel: Kernel, args, options,
                          trc, cache):
    """The compile stage through a content-addressed cache.

    On a miss the stage runs under a private sub-tracer whose counter
    delta is stored alongside the artifact and *replayed* on every hit,
    so a warm measurement reports the same compiler counters as a cold
    one — only the ``cache.*`` counters tell them apart.  (Spans are
    folded into the caller's tracer on a miss but not replayed on a hit:
    wall time actually saved should not be reported as spent.  Event
    logs likewise cover only what actually ran.)
    """
    key = compile_key(kernel.build(spec.n), spec.config, options,
                      strategy=spec.strategy, unroll=spec.unroll,
                      inline=spec.inline, use_profile=spec.use_profile)
    artifact = cache.get(key, trc.counters)
    if artifact is not None:
        baseline, vliw_module, program, compile_stats, saved = artifact
        trc.counters.merge(saved)
        return baseline, vliw_module, program, compile_stats
    sub = Tracer(events=trc.collect_events)
    offset = trc.now_us() if trc.enabled else 0.0
    baseline, vliw_module, program, compile_stats = _compile_stage(
        spec, kernel, args, options, sub)
    saved = sub.counters.as_dict()
    trc.counters.merge(saved)
    if trc.enabled:
        for ev in sub.spans + sub.events:
            getattr(trc, "spans" if ev.ph == "X" else "events").append(
                TraceEvent(ev.name, ev.cat, ev.ph, ev.ts + offset,
                           ev.dur, ev.depth, ev.args))
    # generate the compiled-path source now so it rides the pickled
    # artifact: a warm hit skips codegen as well as compilation
    ensure_program_source(program)
    cache.put(key, (baseline, vliw_module, program, compile_stats, saved))
    return baseline, vliw_module, program, compile_stats


def run_compile(spec: MeasureSpec, tracer: Tracer | None = None,
                cache=None) -> tuple[CompiledProgram,
                                     TraceCompileStats | None]:
    """The compile stage alone: ``(compiled program, compile stats)``.

    The service's compile-only jobs and cache-warming runs use this; it
    is exactly the (optionally cached) compile stage of
    :func:`run_measurement` without the simulations or checks.
    """
    trc = tracer if tracer is not None else NULL_TRACER
    kernel = get_kernel(spec.kernel)
    args = kernel.make_args(spec.n)
    options = spec.options or SchedulingOptions()
    if cache is not None:
        _, _, program, compile_stats = _cached_compile_stage(
            spec, kernel, args, options, trc, cache)
    else:
        _, _, program, compile_stats = _compile_stage(
            spec, kernel, args, options, trc)
    return program, compile_stats


def run_measurement(spec: MeasureSpec,
                    tracer: Tracer | None = None,
                    cache=None) -> Measurement:
    """Measure one kernel end to end; raises if any executor diverges.

    A caller-supplied ``tracer`` wins over ``spec.telemetry`` (the sweep
    command threads one tracer through every kernel); otherwise a fresh
    tracer is created when the spec asks for telemetry.  An optional
    ``cache`` (a :class:`~repro.cache.CompileCache`) makes the whole
    compile stage content-addressed: prepared modules, the trained
    profile's compiled program, and compiler stats are reused whenever
    the kernel source and every compile-relevant knob are unchanged.
    The simulations always run.
    """
    own_tracer = tracer is None and (spec.telemetry or spec.events)
    if own_tracer:
        tracer = Tracer(events=spec.events)
    trc = tracer if tracer is not None else NULL_TRACER

    kernel = get_kernel(spec.kernel)
    args = kernel.make_args(spec.n)
    options = spec.options or SchedulingOptions()

    if cache is not None:
        baseline, vliw_module, program, compile_stats = \
            _cached_compile_stage(spec, kernel, args, options, trc, cache)
    else:
        baseline, vliw_module, program, compile_stats = \
            _compile_stage(spec, kernel, args, options, trc)

    with trc.span("measure.reference", cat="harness"):
        reference = run_module(kernel.build(spec.n), kernel.func, args)
    ref_out = _outputs(kernel, baseline, reference.memory)

    with trc.span("sim.scalar", cat="harness"):
        scalar = run_scalar(baseline, kernel.func, args, spec.config,
                            tracer=trc)
    with trc.span("sim.scoreboard", cat="harness"):
        scoreboard = run_scoreboard(baseline, kernel.func, args, spec.config,
                                    tracer=trc)
    with trc.span("sim.vliw", cat="harness"):
        vliw = run_compiled(program, vliw_module, kernel.func, args,
                            tracer=trc)

    if spec.check:
        with trc.span("measure.check", cat="harness"):
            for name, result in (("scalar", scalar),
                                 ("scoreboard", scoreboard),
                                 ("vliw", vliw)):
                if kernel.returns_value and not _values_equal(
                        result.value, reference.value):
                    raise ReproError(
                        f"{spec.kernel}: {name} returned {result.value!r},"
                        f" expected {reference.value!r}")
                module = baseline if name != "vliw" else vliw_module
                if not _outputs_equal(
                        _outputs(kernel, module, result.memory), ref_out):
                    raise ReproError(
                        f"{spec.kernel}: {name} memory diverged")

    telemetry = None
    if own_tracer or (tracer is not None and tracer.enabled
                      and spec.telemetry):
        telemetry = Telemetry.from_tracer(trc, meta={
            "kernel": spec.kernel, "n": spec.n,
            "config": f"TRACE {7 * spec.config.n_pairs}/200",
            "unroll": spec.unroll, "use_profile": spec.use_profile})
    return Measurement(spec.kernel, spec.n, spec.config, scalar.stats,
                       scoreboard.stats, vliw.stats,
                       compile_stats, program, telemetry)


def perturb_lane_memory(memory: MemoryImage, module: Module,
                        lane: int) -> None:
    """Give lane ``lane`` its own input set, deterministically.

    Lane 0 is the spec's own inputs, untouched.  Higher lanes scale
    every float initializer by a small per-lane, per-element factor.
    The perturbation is multiplicative and positive, so it preserves
    zeros and signs — an input set that ran trap-free still does —
    while shifting every float compare and memory value enough that
    lanes genuinely diverge.  Integer data is left alone: systems
    kernels encode invariants in it (sorted arrays, transition tables)
    that arbitrary edits would break.
    """
    if not lane:
        return
    for obj in module.data.values():
        init = obj.init
        if not isinstance(init, list):
            continue
        base = memory.address_of(obj.name)
        for off, width, value in init:
            if width == 8 and isinstance(value, float) and value:
                factor = 1.0 + 0.0625 * ((lane * 7 + off // 8) % 5)
                memory.store_float(base + off, value * factor)


def run_batch_measurement(spec: MeasureSpec, lanes: int = 1,
                          tracer: Tracer | None = None,
                          cache=None) -> Measurement:
    """Measure one kernel with the VLIW stage batched over ``lanes``
    input sets.

    The compile stage runs once (optionally cached); the scalar and
    scoreboard baselines and the reported stats describe lane 0 — the
    spec's own inputs, so the :class:`Measurement` is comparable to
    :func:`run_measurement`'s.  The VLIW simulation runs all lanes in
    one lockstep batched call (see :class:`~repro.sim.BatchVliwSimulator`),
    each lane over :func:`perturb_lane_memory`'s input set, and with
    ``spec.check`` every lane is verified against its own reference
    interpreter run.
    """
    own_tracer = tracer is None and (spec.telemetry or spec.events)
    if own_tracer:
        tracer = Tracer(events=spec.events)
    trc = tracer if tracer is not None else NULL_TRACER

    kernel = get_kernel(spec.kernel)
    args = kernel.make_args(spec.n)
    options = spec.options or SchedulingOptions()

    if cache is not None:
        baseline, vliw_module, program, compile_stats = \
            _cached_compile_stage(spec, kernel, args, options, trc, cache)
    else:
        baseline, vliw_module, program, compile_stats = \
            _compile_stage(spec, kernel, args, options, trc)

    with trc.span("measure.reference", cat="harness", lanes=lanes):
        ref_values, ref_outs = [], []
        ref_image = MemoryImage(baseline)
        for lane in range(lanes):
            memory = ref_image.clone()
            perturb_lane_memory(memory, baseline, lane)
            reference = run_module(baseline, kernel.func, args,
                                   memory=memory)
            ref_values.append(reference.value)
            ref_outs.append(_outputs(kernel, baseline, reference.memory))

    with trc.span("sim.scalar", cat="harness"):
        scalar = run_scalar(baseline, kernel.func, args, spec.config,
                            tracer=trc)
    with trc.span("sim.scoreboard", cat="harness"):
        scoreboard = run_scoreboard(baseline, kernel.func, args,
                                    spec.config, tracer=trc)
    with trc.span("sim.vliw.batch", cat="harness", lanes=lanes):
        lane_inputs = []
        vliw_image = MemoryImage(vliw_module)
        for lane in range(lanes):
            memory = vliw_image.clone()
            perturb_lane_memory(memory, vliw_module, lane)
            lane_inputs.append(BatchLane(memory, args))
        results = BatchVliwSimulator(
            program, max_beats=200_000_000,
            tracer=trc if trc.enabled else None).run(kernel.func,
                                                     lane_inputs)

    if spec.check:
        with trc.span("measure.check", cat="harness"):
            for name, result in (("scalar", scalar),
                                 ("scoreboard", scoreboard)):
                if kernel.returns_value and not _values_equal(
                        result.value, ref_values[0]):
                    raise ReproError(
                        f"{spec.kernel}: {name} returned {result.value!r},"
                        f" expected {ref_values[0]!r}")
                if not _outputs_equal(
                        _outputs(kernel, baseline, result.memory),
                        ref_outs[0]):
                    raise ReproError(
                        f"{spec.kernel}: {name} memory diverged")
            for lane, (inp, result) in enumerate(zip(lane_inputs,
                                                     results)):
                if kernel.returns_value and not _values_equal(
                        result.value, ref_values[lane]):
                    raise ReproError(
                        f"{spec.kernel}: vliw lane {lane} returned "
                        f"{result.value!r}, expected {ref_values[lane]!r}")
                if not _outputs_equal(
                        _outputs(kernel, vliw_module, inp.memory),
                        ref_outs[lane]):
                    raise ReproError(
                        f"{spec.kernel}: vliw lane {lane} memory diverged")

    telemetry = None
    if own_tracer or (tracer is not None and tracer.enabled
                      and spec.telemetry):
        telemetry = Telemetry.from_tracer(trc, meta={
            "kernel": spec.kernel, "n": spec.n, "lanes": lanes,
            "config": f"TRACE {7 * spec.config.n_pairs}/200",
            "unroll": spec.unroll, "use_profile": spec.use_profile})
    return Measurement(spec.kernel, spec.n, spec.config, scalar.stats,
                       scoreboard.stats, results[0].stats,
                       compile_stats, program, telemetry)


def measure(kernel_name: str, n: int = 64,
            config: MachineConfig = TRACE_28_200,
            options: SchedulingOptions | None = None,
            unroll: int = 8, inline: int = 48,
            use_profile: bool = True,
            check: bool = True, *,
            strategy: str = "trace",
            telemetry: bool = False, events: bool = False,
            tracer: Tracer | None = None) -> Measurement:
    """Positional-compatibility shim over :func:`run_measurement`.

    The original ``measure(kernel, n, config, ...)`` call shape keeps
    working; new options (``telemetry``, ``events``, ``tracer``) are
    keyword-only and collected into a :class:`MeasureSpec`.
    """
    spec = MeasureSpec(kernel=kernel_name, n=n, config=config,
                       options=options, unroll=unroll, inline=inline,
                       strategy=strategy,
                       use_profile=use_profile, check=check,
                       telemetry=telemetry, events=events)
    return run_measurement(spec, tracer=tracer)


def compare_kernel(kernel_name: str, n: int = 64, **kwargs) -> Measurement:
    """Alias used by the README quickstart."""
    return measure(kernel_name, n, **kwargs)
