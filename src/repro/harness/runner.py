"""Work-queue executor: one experiment sweep across worker processes.

Every sweep, fuzz run, and benchmark driver is a bag of independent
tasks — measure one kernel, fuzz one seed — whose results must aggregate
the same way no matter how they were scheduled.  This module is the one
place that bag is executed:

* ``jobs=1`` runs every task inline, in order.  This is not a special
  case bolted on for convenience — it is the *reference schedule* that
  the parallel path must reproduce bit for bit.
* ``jobs>1`` runs the same handler in worker processes, each task under
  its own private :class:`~repro.obs.Tracer`.  Workers never touch a
  shared counter registry; each returns its counters (and spans) as
  plain picklable data, and the parent folds them into the caller's
  tracer **in task-index order** via :meth:`Counters.merge` — so the
  aggregate is independent of worker count and completion order.

Robustness: each task attempt has an optional wall-clock deadline.  A
worker that blows its deadline (or dies) is killed and replaced, and the
task is retried up to ``retries`` times before being reported as failed.
A handler that raises an ordinary exception is *not* retried — that
failure is deterministic — but it never takes the whole run down: it
comes back as a failed :class:`TaskOutcome` with the traceback attached.

Handlers are registered by name in this module (``measure``, ``fuzz``)
so they resolve on both ``fork`` and ``spawn`` start methods: a worker
only needs to import this module to find its function.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from ..obs import Tracer, get_tracer
from .fuzz import fuzz_one
from .measure import run_batch_measurement, run_measurement

#: task-kind name -> handler ``fn(payload, tracer) -> value``
HANDLERS: dict[str, object] = {}


def task_handler(name: str):
    """Register a named task handler (workers look it up by name)."""
    def register(fn):
        HANDLERS[name] = fn
        return fn
    return register


@dataclass
class TaskOutcome:
    """What one task produced, wherever it ran."""

    index: int
    ok: bool
    value: object = None
    error: str | None = None
    #: the task's private counter registry, as a plain dict
    counters: dict = field(default_factory=dict)
    #: the task's span log (host wall-times from the worker's clock)
    spans: list = field(default_factory=list)
    #: the task's instant-event log (only when the caller collects events)
    events: list = field(default_factory=list)
    attempts: int = 1
    duration_s: float = 0.0
    #: the attempt(s) killed their worker (death or blown deadline)
    #: rather than failing deterministically — the only failure mode a
    #: caller may reasonably retry
    crashed: bool = False


def default_jobs() -> int:
    """``$REPRO_JOBS`` if set, else the machine's CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
@task_handler("measure")
def _measure_task(payload, tracer):
    """One sweep point: ``payload = (MeasureSpec, use_cache, cache_dir)``.

    The compile cache is worker-local in memory but shares its disk tier
    across workers (atomic writes make concurrent stores safe), so a
    parallel sweep still warms the same store a serial one would.
    """
    from ..cache import process_cache
    spec, use_cache, cache_dir = payload
    cache = process_cache(cache_dir) if use_cache else None
    return run_measurement(spec, tracer=tracer, cache=cache)


@task_handler("measure_batch")
def _measure_batch_task(payload, tracer):
    """One batched sweep point: ``payload = (MeasureSpec, lanes,
    use_cache, cache_dir)``.  Same contract as ``measure`` but the VLIW
    stage runs all lanes in one lockstep batched call."""
    from ..cache import process_cache
    spec, lanes, use_cache, cache_dir = payload
    cache = process_cache(cache_dir) if use_cache else None
    return run_batch_measurement(spec, lanes=lanes, tracer=tracer,
                                 cache=cache)


@task_handler("fuzz")
def _fuzz_task(payload, tracer):
    """One differential fuzz case: ``payload = (seed, config,
    check_faults, strategy)``."""
    seed, config, check_faults, strategy = payload
    return fuzz_one(seed, config, check_faults, strategy)


@task_handler("api")
def _api_task(payload, tracer):
    """One service job: ``payload = (request json, use_cache, cache_dir)``.

    The request travels in its wire form (a plain dict), so the same
    payload the ``repro serve`` daemon received over the socket is what
    crosses the process boundary to a worker — one schema end to end.
    The returned value is the job's JSON-ready report payload.
    """
    from ..api import execute_payload
    request_obj, use_cache, cache_dir = payload
    return execute_payload(request_obj, use_cache, cache_dir, tracer)


@task_handler("audit")
def _audit_task(payload, tracer):
    """One optimality-audit case: ``payload`` is the case dict built by
    :func:`repro.optimal.audit.audit_payloads` (kernel, mode, budget).
    The returned value is the case's gap-table row."""
    from ..optimal.audit import audit_case
    return audit_case(payload, tracer)


@task_handler("tune")
def _tune_task(payload, tracer):
    """One autotuner case: ``payload`` is the case dict built by
    :func:`repro.tune.run_tune` (case identity + the candidate params
    to score + whether the exact bound is needed).  The returned value
    maps candidate indices to schedule totals."""
    from ..tune.driver import tune_case
    return tune_case(payload, tracer)


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
def _run_one(fn, index: int, payload, events: bool = False) -> TaskOutcome:
    """Execute one task attempt in this process."""
    tracer = Tracer(events=events)
    start = time.perf_counter()
    try:
        value = fn(payload, tracer)
        ok, error = True, None
    except Exception:
        value, ok, error = None, False, traceback.format_exc()
    return TaskOutcome(index, ok, value, error,
                       tracer.counters.as_dict(), tracer.spans,
                       tracer.events,
                       duration_s=time.perf_counter() - start)


def _worker_main(kind: str, inbox, outbox, worker_id: int,
                 events: bool) -> None:
    """Worker loop: each message is one *chunk* — a list of
    ``(index, payload)`` tasks executed back to back, with one outbox
    reply for the lot.  Chunking amortizes the per-message queue and
    scheduling overhead that dominates when tasks are short."""
    fn = HANDLERS[kind]
    while True:
        message = inbox.get()
        if message is None:
            return
        chunk_id, items = message
        outcomes = [_run_one(fn, index, payload, events)
                    for index, payload in items]
        outbox.put((worker_id, chunk_id, outcomes))


def _fold(trc, outcomes: list[TaskOutcome]) -> None:
    """Merge every task's counters, spans, and events, in task-index
    order."""
    for outcome in outcomes:
        trc.counters.merge(outcome.counters)
        if trc.enabled:
            trc.spans.extend(outcome.spans)
            trc.events.extend(outcome.events)


class _Worker:
    """One worker process plus the parent's view of its assignment."""

    def __init__(self, ctx, kind: str, outbox, worker_id: int,
                 events: bool = False) -> None:
        self.inbox = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(kind, self.inbox, outbox, worker_id, events),
            daemon=True)
        self.process.start()
        self.task: int | None = None
        self.deadline: float | None = None

    def assign(self, chunk_id: int, items: list,
               timeout_s: float | None) -> None:
        self.task = chunk_id
        # the deadline covers the whole chunk: each task gets its
        # timeout, spent sequentially
        self.deadline = (time.monotonic() + timeout_s * len(items)
                         if timeout_s is not None else None)
        self.inbox.put((chunk_id, items))

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)

    def retire(self) -> None:
        self.inbox.put(None)


def default_chunk(n_tasks: int, jobs: int) -> int:
    """Tasks per worker message when the caller does not say.

    Big enough to amortize queue/scheduling overhead, small enough to
    keep ~4 chunks per worker for load balance; short runs degrade to
    chunk=1 (exactly the pre-chunking behavior).
    """
    return max(1, n_tasks // (jobs * 4))


def run_tasks(kind: str, payloads: list, jobs: int = 1,
              timeout_s: float | None = None, retries: int = 1,
              tracer=None, chunk: int | None = None) -> list[TaskOutcome]:
    """Run every payload through the ``kind`` handler; ordered outcomes.

    ``jobs=1`` executes inline (the serial reference schedule); any
    higher value fans out over worker processes, ``chunk`` tasks per
    worker message (auto-sized by :func:`default_chunk` when ``None``).
    Either way the caller's tracer receives every task's counters and
    spans folded in task-index order, so aggregate counters are
    bit-identical across ``jobs`` and ``chunk`` settings.

    A timed-out or crashed chunk is retried whole: its tasks share one
    attempt counter, and ``timeout_s`` (per task) scales by chunk
    length for the deadline.
    """
    trc = get_tracer(tracer)
    collect_events = trc.enabled and trc.collect_events
    # jobs=1 runs inline even for one task; jobs>1 always uses workers —
    # a single task still wants the deadline policing only a separate
    # process can provide
    if jobs <= 1 or not payloads:
        fn = HANDLERS[kind]
        outcomes = [_run_one(fn, i, p, collect_events)
                    for i, p in enumerate(payloads)]
        _fold(trc, outcomes)
        return outcomes

    if chunk is None:
        chunk = default_chunk(len(payloads), jobs)
    chunks = [[(i, payloads[i]) for i in range(lo, min(lo + chunk,
                                                       len(payloads)))]
              for lo in range(0, len(payloads), chunk)]

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    outbox = ctx.Queue()
    outcomes: list[TaskOutcome | None] = [None] * len(payloads)
    attempts = [0] * len(chunks)
    pending = deque(range(len(chunks)))
    workers: list[_Worker] = []

    def _dispatch(worker: _Worker) -> None:
        chunk_id = pending.popleft()
        attempts[chunk_id] += 1
        worker.assign(chunk_id, chunks[chunk_id], timeout_s)

    try:
        for worker_id in range(min(jobs, len(chunks))):
            worker = _Worker(ctx, kind, outbox, worker_id, collect_events)
            workers.append(worker)
            if pending:
                _dispatch(worker)

        while any(o is None for o in outcomes):
            try:
                worker_id, chunk_id, got = outbox.get(timeout=0.05)
            except queue.Empty:
                got = None
            if got is not None:
                for outcome in got:
                    outcome.attempts = attempts[chunk_id]
                    outcomes[outcome.index] = outcome
                worker = workers[worker_id]
                worker.task = worker.deadline = None
                if pending:
                    _dispatch(worker)

            # deadline and liveness police
            now = time.monotonic()
            for worker_id, worker in enumerate(workers):
                chunk_id = worker.task
                if chunk_id is None:
                    continue
                timed_out = (worker.deadline is not None
                             and now > worker.deadline)
                died = not worker.process.is_alive()
                if not (timed_out or died):
                    continue
                worker.kill()
                reason = ("timed out after "
                          f"{timeout_s}s/task" if timed_out else
                          "worker died "
                          f"(exit {worker.process.exitcode})")
                if attempts[chunk_id] <= retries:
                    pending.appendleft(chunk_id)
                else:
                    for index, _payload in chunks[chunk_id]:
                        outcomes[index] = TaskOutcome(
                            index, False, error=f"task {index} {reason} "
                            f"after {attempts[chunk_id]} attempts",
                            attempts=attempts[chunk_id], crashed=True)
                replacement = _Worker(ctx, kind, outbox, worker_id,
                                      collect_events)
                workers[worker_id] = replacement
                if pending:
                    _dispatch(replacement)
    finally:
        for worker in workers:
            if worker.process.is_alive() and worker.task is None:
                worker.retire()
            else:
                worker.kill()
        for worker in workers:
            worker.process.join(timeout=5)

    _fold(trc, outcomes)
    return outcomes


# ----------------------------------------------------------------------
# the two drivers
# ----------------------------------------------------------------------
def run_sweep(specs: list, jobs: int = 1, tracer=None,
              use_cache: bool = True, cache_dir: str | None = None,
              timeout_s: float | None = None, retries: int = 1,
              batch: bool = True, lanes: int = 1,
              chunk: int | None = None) -> list:
    """Measure every spec; ordered :class:`Measurement` list.

    With ``batch`` (the default) each point's VLIW stage runs through
    the batched executor over ``lanes`` input sets (lane 0 is the
    spec's own inputs, so reported stats are unchanged);
    ``batch=False`` is the pre-batching per-run path.  Raises
    :class:`RuntimeError` carrying the first failure's traceback if any
    measurement failed (divergence is never swallowed by parallelism).
    """
    if batch:
        payloads = [(spec, lanes, use_cache, cache_dir) for spec in specs]
        outcomes = run_tasks("measure_batch", payloads, jobs=jobs,
                             timeout_s=timeout_s, retries=retries,
                             tracer=tracer, chunk=chunk)
    else:
        payloads = [(spec, use_cache, cache_dir) for spec in specs]
        outcomes = run_tasks("measure", payloads, jobs=jobs,
                             timeout_s=timeout_s, retries=retries,
                             tracer=tracer, chunk=chunk)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise RuntimeError(
            f"{len(failed)} of {len(outcomes)} measurements failed; "
            f"first: {failed[0].error}")
    return [o.value for o in outcomes]


def run_fuzz_cases(seed: int, count: int, config, check_faults: bool,
                   strategy: str, jobs: int = 1, tracer=None,
                   progress=None, timeout_s: float | None = None,
                   retries: int = 1) -> list:
    """Run ``count`` differential cases; ordered :class:`FuzzCase` list.

    An executor-level failure (handler exception, exhausted retries)
    becomes a failed case for that seed rather than an exception, so a
    fuzz report always covers every requested seed.  The ``fuzz.*``
    counters and the ``progress`` callback fire in the parent, in seed
    order — workers report no shared state.
    """
    from .fuzz import FuzzCase

    trc = get_tracer(tracer)
    payloads = [(seed + i, config, check_faults, strategy)
                for i in range(count)]
    outcomes = run_tasks("fuzz", payloads, jobs=jobs, timeout_s=timeout_s,
                         retries=retries, tracer=tracer)
    cases = []
    for i, outcome in enumerate(outcomes):
        if outcome.ok:
            case = outcome.value
        else:
            case = FuzzCase(seed + i)
            case.fail(f"executor: {outcome.error}")
        cases.append(case)
        trc.counters.inc("fuzz.cases")
        trc.counters.inc("fuzz.faults_fired", case.faults_fired)
        trc.counters.inc("fuzz.loops_pipelined", case.loops_pipelined)
        if case.checkpoint_verified:
            trc.counters.inc("fuzz.checkpoints_verified")
        if not case.ok:
            trc.counters.inc("fuzz.failures")
        if progress is not None:
            progress(case)
    return cases
