"""Experiment harness: end-to-end measurement, code-size accounting,
and report formatting."""

from .codesize import (CISC_DENSITY, CodeSizeReport, measure_code_size,
                       scalar_code_bytes)
from .measure import (Measurement, compare_kernel, measure, prepare_modules,
                      train_profile)
from .report import format_table, print_table

__all__ = [
    "CISC_DENSITY", "CodeSizeReport", "measure_code_size",
    "scalar_code_bytes",
    "Measurement", "compare_kernel", "measure", "prepare_modules",
    "train_profile",
    "format_table", "print_table",
]
