"""Experiment harness: end-to-end measurement, code-size accounting,
and report formatting."""

from .codesize import (CISC_DENSITY, CodeSizeReport, measure_code_size,
                       scalar_code_bytes)
from .fuzz import (FuzzCase, FuzzReport, fuzz_one, run_fuzz,
                   verify_dismissal)
from .measure import (Measurement, MeasureSpec, compare_kernel, measure,
                      perturb_lane_memory, prepare_modules,
                      run_batch_measurement, run_compile, run_measurement,
                      train_profile)
from .report import (config_report, format_table, measurement_report,
                     print_table, sweep_report)
from .runner import (TaskOutcome, default_chunk, default_jobs,
                     run_fuzz_cases, run_sweep, run_tasks)

__all__ = [
    "CISC_DENSITY", "CodeSizeReport", "measure_code_size",
    "scalar_code_bytes",
    "FuzzCase", "FuzzReport", "fuzz_one", "run_fuzz", "verify_dismissal",
    "Measurement", "MeasureSpec", "compare_kernel", "measure",
    "perturb_lane_memory", "prepare_modules", "run_batch_measurement",
    "run_compile", "run_measurement", "train_profile",
    "config_report", "format_table", "measurement_report", "print_table",
    "sweep_report",
    "TaskOutcome", "default_chunk", "default_jobs", "run_fuzz_cases",
    "run_sweep", "run_tasks",
]
