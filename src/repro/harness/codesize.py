"""Object-code size accounting (paper section 9, experiment E6).

Three sizes per compiled function:

* ``unpacked_bytes`` — the fixed-width instruction image (what the cache
  holds): ``instructions x 32 bytes x n_pairs``;
* ``packed_bytes`` — the variable-length mask-word main-memory format
  (what the program actually occupies on disk / in RAM);
* ``scalar_bytes`` — the conventional-RISC baseline: the classically
  optimized (un-unrolled) IR at 4 bytes per operation.

The paper also compares against VAX object code; a tightly-encoded CISC is
modeled as ``scalar_bytes / CISC_DENSITY`` with the paper's own 30-50%
per-op expansion figure (mid-point 1.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import MemoryImage, Module
from ..machine import CompiledFunction, PackedProgram, encode_function

#: VLIW ops are ~30-50% bigger than VAX encodings (paper section 9)
CISC_DENSITY = 1.4


@dataclass
class CodeSizeReport:
    """Size comparison for one function."""

    name: str
    instructions: int
    operations: int
    packed_bytes: int
    unpacked_bytes: int
    scalar_bytes: int

    @property
    def cisc_bytes(self) -> float:
        return self.scalar_bytes / CISC_DENSITY

    @property
    def packing_ratio(self) -> float:
        """How much the mask format saves vs the full-width image."""
        return self.packed_bytes / self.unpacked_bytes

    @property
    def vs_scalar(self) -> float:
        """Packed VLIW object size over the scalar baseline."""
        return self.packed_bytes / self.scalar_bytes

    @property
    def vs_cisc(self) -> float:
        """Packed VLIW object size over the modeled CISC baseline —
        the paper's 'approximately 3 times larger than VAX object code'."""
        return self.packed_bytes / self.cisc_bytes

    def row(self) -> dict:
        return {
            "function": self.name,
            "instructions": self.instructions,
            "operations": self.operations,
            "packed_KB": round(self.packed_bytes / 1024, 2),
            "unpacked_KB": round(self.unpacked_bytes / 1024, 2),
            "packing_ratio": round(self.packing_ratio, 3),
            "vs_scalar": round(self.vs_scalar, 2),
            "vs_cisc": round(self.vs_cisc, 2),
        }


def scalar_code_bytes(module: Module, func: str) -> int:
    """Baseline object size: 4 bytes per (non-NOP) scalar operation."""
    return 4 * module.function(func).op_count()


def measure_code_size(cf: CompiledFunction, baseline_module: Module,
                      func: str | None = None,
                      layout: dict | None = None) -> CodeSizeReport:
    """Size report for one compiled function against its scalar baseline."""
    if func is None:
        func = cf.name
    if layout is None:
        layout = MemoryImage(baseline_module).layout
    packed: PackedProgram = encode_function(cf, layout)
    return CodeSizeReport(
        name=cf.name,
        instructions=len(cf.instructions),
        operations=cf.op_count(),
        packed_bytes=packed.packed_bytes,
        unpacked_bytes=packed.unpacked_bytes,
        scalar_bytes=scalar_code_bytes(baseline_module, func),
    )
