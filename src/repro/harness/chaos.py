"""Crash-injection harness: prove the service's durability end to end.

Unit tests can exercise the journal's replay logic in-process, but the
durability claim the service makes — *an accepted job survives the
daemon dying at any moment* — is a claim about a real process being
SIGKILLed with no cleanup and a real restart replaying a real file.
This module stages exactly that:

1. run the whole batch **uninterrupted** in-process (the control run:
   the payloads every job must eventually match, byte for byte);
2. start a real ``repro serve`` daemon as a subprocess with a journal
   and ``$REPRO_CHAOS_KILL`` armed at one of the seeded points the
   dispatcher passes through (:data:`KILL_POINTS` — before the wave is
   journaled, after the attempts are journaled but before execution,
   after execution but before any result is recorded);
3. submit the batch; the daemon SIGKILLs itself at the seeded point
   (the submit itself may die mid-flight — that is part of the test);
4. restart the daemon on the same journal and cache, re-submit the
   same batch (safe: identity dedup aliases the resubmission onto
   whatever the journal recovered), and collect every result;
5. assert each payload is byte-identical to the control run's (via
   :func:`repro.api.dumps`), that recovered compile work was served
   from the shared cache (``cache.hit`` > 0 — the pre-crash compile
   was not redone), and that no job exceeded the bounded retry budget.

The ``repro chaos`` CLI and CI's chaos smoke job drive this; tests
reuse the pieces.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from ..api import MeasureRequest, dumps, run_request
from ..errors import ReproError
from ..serve import Client, ServerUnavailable
from ..serve.server import CHAOS_POINTS

#: The seeded SIGKILL points (re-exported from the server so the
#: harness and the dispatcher can never disagree about the names).
KILL_POINTS = CHAOS_POINTS


class ChaosError(ReproError):
    """A chaos scenario could not even be staged (daemon never came
    up, never died, or never came back) — distinct from a recovery
    *verification* failure, which lands in :attr:`ChaosOutcome.error`."""


@dataclass
class ChaosOutcome:
    """What one kill-point scenario observed."""

    point: str
    ok: bool = False
    jobs: int = 0
    #: jobs whose recovered payload matched the control run exactly
    identical: int = 0
    #: ``cache.hit`` total across recovered results (pre-crash compile
    #: work served from the shared store instead of redone)
    cache_hits: int = 0
    #: highest per-job attempt count observed after recovery
    max_attempts_seen: int = 0
    #: jobs quarantined by the retry budget (should be 0 — chaos kills
    #: the daemon, not the job's own worker)
    quarantined: int = 0
    kill_exit: int | None = None
    recovery_s: float = 0.0
    error: str | None = None
    details: list = field(default_factory=list)

    def row(self) -> dict:
        return {"point": self.point, "ok": self.ok, "jobs": self.jobs,
                "identical": self.identical,
                "cache_hits": self.cache_hits,
                "max_attempts": self.max_attempts_seen,
                "quarantined": self.quarantined,
                "kill_exit": self.kill_exit,
                "recovery_s": round(self.recovery_s, 3)}


def free_port() -> int:
    """An OS-assigned free TCP port (racy by nature, fine for tests)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _daemon_env(chaos_point: str | None) -> dict:
    """The subprocess environment: inherit, point PYTHONPATH at our
    import roots, arm (or disarm) the kill switch."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    if chaos_point is None:
        env.pop("REPRO_CHAOS_KILL", None)
    else:
        env["REPRO_CHAOS_KILL"] = chaos_point
    return env


def start_daemon(port: int, journal: str, cache_dir: str, *,
                 batch: int = 8, jobs: int = 1,
                 chaos_point: str | None = None,
                 verbose: bool = False) -> subprocess.Popen:
    """Launch a real ``repro serve`` subprocess on ``port``."""
    cmd = [sys.executable, "-m", "repro", "serve",
           "--port", str(port), "--journal", journal,
           "--cache-dir", cache_dir, "--batch", str(batch),
           "--jobs", str(jobs)]
    sink = None if verbose else subprocess.DEVNULL
    return subprocess.Popen(cmd, env=_daemon_env(chaos_point),
                            stdout=sink, stderr=sink)


def wait_ready(client: Client, proc: subprocess.Popen,
               timeout_s: float = 30.0, *,
               may_die: bool = False) -> bool:
    """Poll ``/readyz`` until the daemon is ready (or, when ``may_die``,
    until it exits — a daemon armed to kill itself pre-dispatch can be
    gone before the probe ever lands).  True if it became ready."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            if may_die:
                return False
            raise ChaosError(f"daemon exited {proc.returncode} before "
                             f"becoming ready")
        try:
            if client.ready().get("ready"):
                return True
        except ServerUnavailable:
            pass
        time.sleep(0.05)
    raise ChaosError(f"daemon not ready within {timeout_s:g}s")


def _control_payloads(requests: list[MeasureRequest]) -> list[dict]:
    """The uninterrupted reference run, in-process and cache-free, so
    the differential baseline owes nothing to the daemons under test."""
    return [run_request(request) for request in requests]


def run_scenario(point: str, requests: list[MeasureRequest],
                 control: list[dict], workdir: str, *,
                 timeout_s: float = 120.0,
                 verbose: bool = False) -> ChaosOutcome:
    """One kill-point scenario: kill, restart, differentially verify."""
    outcome = ChaosOutcome(point=point, jobs=len(requests))
    scenario_dir = os.path.join(workdir, point.replace("-", "_"))
    os.makedirs(scenario_dir, exist_ok=True)
    journal = os.path.join(scenario_dir, "serve.journal")
    cache_dir = os.path.join(scenario_dir, "cache")
    port = free_port()
    client = Client(f"127.0.0.1:{port}", timeout_s=10.0)

    def note(message: str) -> None:
        if verbose:
            print(f"chaos[{point}]: {message}", flush=True)

    # --- phase 1: the doomed daemon -----------------------------------
    note(f"starting doomed daemon on :{port}")
    victim = start_daemon(port, journal, cache_dir,
                          batch=len(requests), chaos_point=point,
                          verbose=verbose)
    try:
        wait_ready(client, victim, timeout_s=min(30.0, timeout_s))
        try:
            client.submit(requests)
            note("batch accepted")
        except ServerUnavailable:
            # killed before (or while) replying — the journal decides
            # what survived; that is exactly the property under test
            note("daemon died during submit")
        try:
            victim.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            outcome.error = (f"daemon armed for {point!r} still alive "
                             f"after {timeout_s:g}s — the chaos point "
                             f"never fired")
            return outcome
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=10)
    outcome.kill_exit = victim.returncode
    if victim.returncode != -signal.SIGKILL:
        outcome.error = (f"daemon was armed for {point!r} but exited "
                         f"{victim.returncode}, not SIGKILL — the chaos "
                         f"point never fired")
        return outcome
    note(f"daemon SIGKILLed (exit {victim.returncode})")

    # --- phase 2: restart on the same journal and recover -------------
    restart_t0 = time.monotonic()
    survivor = start_daemon(port, journal, cache_dir,
                            batch=len(requests), chaos_point=None,
                            verbose=verbose)
    try:
        wait_ready(client, survivor, timeout_s=min(30.0, timeout_s))
        outcome.recovery_s = time.monotonic() - restart_t0
        note(f"restarted and ready in {outcome.recovery_s:.3f}s")
        # resubmit the same batch: anything the journal recovered is
        # deduped onto, anything lost pre-journal is simply run now
        statuses = client.submit(requests)
        results = client.results([s.job_id for s in statuses],
                                 timeout_s=timeout_s)
        final = [client.status(r.job_id) for r in results]
        stats = client.stats()
        reply = client.shutdown()
        if reply.get("dispatcher_stuck"):
            outcome.error = "dispatcher stuck during recovery shutdown"
            return outcome
    finally:
        try:
            survivor.wait(timeout=30)
        except subprocess.TimeoutExpired:
            survivor.kill()
            survivor.wait(timeout=10)

    # --- phase 3: differential verification ---------------------------
    counters = stats.get("counters", {})
    outcome.quarantined = counters.get("serve.quarantined", 0)
    for request, result, expected in zip(requests, results, control):
        detail = {"job_id": result.job_id, "kernel": request.kernel,
                  "ok": result.ok,
                  "cache_hit": bool(result.cache_hit)}
        outcome.cache_hits += result.counters.get("cache.hit", 0)
        detail["identical"] = (result.ok
                               and dumps(result.result) == dumps(expected))
        if detail["identical"]:
            outcome.identical += 1
        outcome.details.append(detail)
    for status in final:
        outcome.max_attempts_seen = max(outcome.max_attempts_seen,
                                        status.attempts)
    failures = []
    if outcome.identical != outcome.jobs:
        bad = [d for d in outcome.details if not d["identical"]]
        failures.append(f"{len(bad)} of {outcome.jobs} payloads diverged "
                        f"from the control run: {bad}")
    if outcome.quarantined:
        failures.append(f"{outcome.quarantined} jobs quarantined (chaos "
                        f"kills the daemon, never the job's worker)")
    if point == "pre-finish" and outcome.cache_hits == 0:
        failures.append("pre-finish kill recovered with no cache.hit — "
                        "finished compile work was redone, not recovered")
    outcome.ok = not failures
    outcome.error = "; ".join(failures) or None
    return outcome


def run_chaos(points: list[str], kernels: list[str], *, n: int = 24,
              workdir: str | None = None, timeout_s: float = 120.0,
              verbose: bool = False) -> list[ChaosOutcome]:
    """Run every kill-point scenario; one :class:`ChaosOutcome` each."""
    for point in points:
        if point not in KILL_POINTS:
            raise ChaosError(f"unknown chaos point {point!r} "
                             f"(expected one of {KILL_POINTS})")
    requests = [MeasureRequest(kernel=kernel, n=n, unroll=4)
                for kernel in kernels]
    for request in requests:
        request.validate()
    control = _control_payloads(requests)
    base = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    return [run_scenario(point, requests, control, base,
                         timeout_s=timeout_s, verbose=verbose)
            for point in points]
