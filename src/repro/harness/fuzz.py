"""Differential fuzzing with fault injection.

Every fuzz case runs one seed-generated program (see
``workloads/generator.py``) on the reference interpreter and on the
trace-scheduled VLIW simulator three ways:

1. **clean** — no faults; return value and final array state must match
   the interpreter exactly (the classic differential oracle);
2. **faulted** — a seed-derived :class:`~repro.faults.InjectionPlan` of
   architecturally-invisible faults (drain-and-resume interrupts, TLB
   flushes, poisoned banks).  These may only cost time: the final state
   must stay bit-identical, and the run must not get *faster*;
3. **checkpoint/resume** — a checkpointing interrupt at mid-run drains
   the pipelines and snapshots the machine; a *fresh* simulator resumes
   the checkpoint and must reach the same value and byte-identical
   memory as the uninterrupted run (the paper's precise-interrupt claim,
   section 4).

Every case also runs a *metamorphic* check on the unified dependence
engine: bijectively renaming all of a program's virtual registers (a
seeded permutation of the existing names) must not change the edge
structure — (src, dst, kind, latency) per trace — of any dependence
graph the scheduling core builds for it.  Register names feed the
builder only through def/use identity and the memory-reference
annotations, both of which rename consistently, so any divergence means
the builder depends on spelling, not structure.

One extra scenario per report exercises the dismissable-load story: a
profile-trained guard-branch program whose speculated load goes out of
bounds at run time must dismiss (funny number, no trap) and still agree
with the interpreter.

With ``strategy="pipeline"`` (or ``"auto"``) every case additionally
cross-checks the two loop engines: the same seed-generated program is
compiled once with the requested strategy (whose output feeds the
faulted and checkpoint/resume variants above) and once with plain trace
scheduling, and the two simulations must agree with each other and with
the interpreter.

Reproducibility: a case is fully determined by its integer seed — the
program, the fault plan, and the checkpoint beat all derive from it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..faults import FaultInjector, InjectionPlan
from ..ir import IRBuilder, Interpreter, MemoryImage, Module, RegClass, \
    VReg, run_module, verify_module
from ..machine import MachineConfig, TRACE_28_200
from ..obs import get_tracer
from ..sim import VliwSimulator, run_compiled
from ..trace import TraceCompiler
from ..workloads.generator import generate_program

#: arguments every generated ``main(p0, p1)`` is fuzzed with
ARGS = (7, -3)


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _array_state(module: Module, memory: MemoryImage) -> dict:
    state = {}
    for name, obj in module.data.items():
        elem = 8 if name.startswith("FA") else 4
        state[name] = memory.read_array(name, obj.size // elem, elem)
    return state


def _states_equal(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    return all(len(a[k]) == len(b[k])
               and all(_values_equal(x, y) for x, y in zip(a[k], b[k]))
               for k in a)


@dataclass
class FuzzCase:
    """Outcome of one differential case."""

    seed: int
    ok: bool = True
    failures: list[str] = field(default_factory=list)
    #: injected events actually delivered during the faulted run
    faults_fired: int = 0
    #: a checkpoint/resume round trip matched the uninterrupted run
    checkpoint_verified: bool = False
    #: compiler degradations recorded while compiling this program
    degradations: int = 0
    #: loops the modulo scheduler took (0 under plain trace scheduling)
    loops_pipelined: int = 0
    #: vreg renaming left the dependence-edge structure unchanged
    renaming_verified: bool = False

    def fail(self, message: str) -> None:
        self.ok = False
        self.failures.append(message)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    cases: list[FuzzCase] = field(default_factory=list)
    #: the dedicated dismissable-load scenario passed
    dismissal_verified: bool = False
    #: the dedicated scenario was run at all (off when faults are off)
    dismissal_checked: bool = False

    @property
    def ok(self) -> bool:
        return (all(c.ok for c in self.cases)
                and (self.dismissal_verified or not self.dismissal_checked))

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.cases if not c.ok)

    @property
    def checkpoints_verified(self) -> int:
        return sum(1 for c in self.cases if c.checkpoint_verified)

    @property
    def faults_fired(self) -> int:
        return sum(c.faults_fired for c in self.cases)

    @property
    def loops_pipelined(self) -> int:
        return sum(c.loops_pipelined for c in self.cases)

    @property
    def renamings_verified(self) -> int:
        return sum(1 for c in self.cases if c.renaming_verified)

    def summary(self) -> str:
        lines = [f"fuzz: {len(self.cases)} cases, {self.n_failed} failed, "
                 f"{self.faults_fired} faults injected, "
                 f"{self.checkpoints_verified} checkpoint/resume round trips "
                 f"verified, {self.renamings_verified} dep-graph renaming "
                 f"invariance checks passed"]
        if self.loops_pipelined:
            lines.append(f"loops software-pipelined across cases: "
                         f"{self.loops_pipelined}")
        if self.dismissal_checked:
            state = "ok" if self.dismissal_verified else "FAILED"
            lines.append(f"dismissed-load scenario: {state}")
        for case in self.cases:
            if not case.ok:
                for failure in case.failures:
                    lines.append(f"  seed {case.seed}: {failure}")
        return "\n".join(lines)

    def row(self) -> dict:
        return {
            "cases": len(self.cases),
            "failed": self.n_failed,
            "faults_fired": self.faults_fired,
            "checkpoints_verified": self.checkpoints_verified,
            "dismissal_verified": self.dismissal_verified,
            "loops_pipelined": self.loops_pipelined,
            "renamings_verified": self.renamings_verified,
            "failures": [f for c in self.cases for f in c.failures],
        }


# ----------------------------------------------------------------------
def _rename_vregs(module: Module, seed: int) -> None:
    """Bijectively rename every vreg: a seeded permutation per function.

    Permuting the *existing* names (rather than inventing fresh ones)
    guarantees a bijection and maximally scrambles any name-ordering the
    builder could accidentally depend on.  Memory annotations are
    cleared; the caller re-derives them from the renamed defs.
    """
    rng = random.Random((seed << 1) ^ 0xC0FFEE)
    for func in module.functions.values():
        names: list[str] = []
        seen: set[str] = set()

        def note(value) -> None:
            if isinstance(value, VReg) and value.name not in seen:
                seen.add(value.name)
                names.append(value.name)

        for param in func.params:
            note(param)
        for block in func.blocks.values():
            for op in block.ops:
                note(op.dest)
                for src in op.srcs:
                    note(src)
        shuffled = list(names)
        rng.shuffle(shuffled)
        mapping = dict(zip(names, shuffled))

        def sub(value):
            if isinstance(value, VReg):
                return VReg(mapping[value.name], value.cls)
            return value

        func.params = [sub(param) for param in func.params]
        for block in func.blocks.values():
            for op in block.ops:
                if op.dest is not None:
                    op.dest = sub(op.dest)
                op.srcs = [sub(src) for src in op.srcs]
                op.memref = None


def _dep_signature(module: Module, config: MachineConfig) -> list:
    """Rename-invariant edge structure of every trace's dependence graph.

    Walks traces exactly like the compiler (select, build, mark, remove)
    but never schedules; the signature is (function, blocks, sorted
    (src, dst, kind, latency) edge tuples) per trace, which mentions no
    register names.
    """
    from ..analysis import compute_liveness
    from ..disambig import Disambiguator, derive_memrefs
    from ..sched import SchedulingOptions, build_acyclic_graph
    from ..trace import TraceSelector, clone_function
    from ..trace.profile import estimate_static

    disambig = Disambiguator(module)
    options = SchedulingOptions()
    signature = []
    for fname, func in module.functions.items():
        derive_memrefs(func)
        work = clone_function(func)
        live_in_map = dict(compute_liveness(work).live_in)
        selector = TraceSelector(work, estimate_static(work))
        entry_labels = {work.entry.name}
        while True:
            trace = selector.next_trace()
            if trace is None:
                break
            graph = build_acyclic_graph(work, trace, disambig, config,
                                        options, live_in_map, entry_labels)
            signature.append((fname, tuple(trace.blocks), tuple(sorted(
                (src, e.dst, e.kind, e.latency)
                for src, edges in enumerate(graph.succs) for e in edges))))
            for node in graph.splits():
                entry_labels.add(node.off_trace)
            selector.mark_scheduled(trace)
            for bname in trace.blocks:
                work.remove_block(bname)
    return signature


def check_renaming_invariance(seed: int,
                              config: MachineConfig = TRACE_28_200
                              ) -> tuple[bool, str]:
    """The dep-graph metamorphic check for one seed: (passed, detail)."""
    baseline = _dep_signature(generate_program(seed), config)
    renamed_module = generate_program(seed)
    _rename_vregs(renamed_module, seed)
    verify_module(renamed_module)
    renamed = _dep_signature(renamed_module, config)
    if baseline == renamed:
        return True, ""
    for want, have in zip(baseline, renamed):
        if want != have:
            return False, (f"dep graph changed under vreg renaming: "
                           f"{want[0]} trace {list(want[1])}")
    return False, "dep graph trace count changed under vreg renaming"


def fuzz_one(seed: int, config: MachineConfig = TRACE_28_200,
             check_faults: bool = True,
             strategy: str = "trace") -> FuzzCase:
    """Run one differential case; never raises on divergence (records it).

    With a non-default ``strategy`` the faulted and checkpoint variants
    run against the strategy-compiled program, and an extra
    trace-compiled run of the same program must agree with it.
    """
    case = FuzzCase(seed)
    module = generate_program(seed)
    ref = run_module(module, "main", ARGS)
    ref_arrays = _array_state(module, ref.memory)

    renaming_ok, detail = check_renaming_invariance(seed, config)
    if renaming_ok:
        case.renaming_verified = True
    else:
        case.fail(detail)

    compiler = TraceCompiler(module, config, strategy=strategy)
    program = compiler.compile_module()
    case.degradations = sum(len(s.degradations)
                            for s in compiler.stats.values())
    case.loops_pipelined = sum(len(s.pipelined_loops)
                               for s in compiler.stats.values())

    clean = run_compiled(program, module, "main", ARGS)
    if not _values_equal(clean.value, ref.value):
        case.fail(f"clean run returned {clean.value!r}, "
                  f"interpreter returned {ref.value!r}")
    if not _states_equal(_array_state(module, clean.memory), ref_arrays):
        case.fail("clean run memory diverged from interpreter")

    if strategy != "trace" and case.ok:
        # same seed, fresh module: the default engine must agree with the
        # strategy engine op for op (generate_program is deterministic)
        t_module = generate_program(seed)
        t_program = TraceCompiler(t_module, config).compile_module()
        traced = run_compiled(t_program, t_module, "main", ARGS)
        if not _values_equal(traced.value, clean.value):
            case.fail(f"trace engine returned {traced.value!r}, "
                      f"{strategy} engine returned {clean.value!r}")
        if not _states_equal(_array_state(t_module, traced.memory),
                             _array_state(module, clean.memory)):
            case.fail(f"trace and {strategy} engines diverged on memory")

    if not check_faults or not case.ok:
        return case

    # --- timing-only faults must be architecturally invisible ----------
    plan = InjectionPlan.random(seed, horizon_beats=clean.stats.beats,
                                total_banks=config.total_banks)
    injector = FaultInjector(plan)
    faulted = run_compiled(program, module, "main", ARGS, injector=injector)
    case.faults_fired = len(injector.fired)
    if not _values_equal(faulted.value, ref.value):
        case.fail(f"faulted run returned {faulted.value!r}, "
                  f"interpreter returned {ref.value!r}")
    if not _states_equal(_array_state(module, faulted.memory), ref_arrays):
        case.fail("faulted run memory diverged from interpreter")
    if faulted.stats.beats < clean.stats.beats:
        case.fail(f"faulted run was faster than clean "
                  f"({faulted.stats.beats} < {clean.stats.beats} beats)")

    # --- checkpoint at mid-run, resume on a fresh simulator ------------
    half = clean.stats.beats // 2
    ck = FaultInjector(InjectionPlan.interrupt_at(half, checkpoint=True))
    first = VliwSimulator(program, MemoryImage(module),
                          injector=ck).run("main", ARGS)
    if not first.interrupted:
        if clean.stats.beats >= 8:
            case.fail(f"checkpoint interrupt at beat {half} "
                      f"never delivered ({clean.stats.beats} beats total)")
        return case
    resumed = VliwSimulator(program, MemoryImage(module)) \
        .resume(first.checkpoint)
    if resumed.interrupted:
        case.fail("resumed run interrupted again with an empty plan")
    elif not _values_equal(resumed.value, clean.value):
        case.fail(f"resumed run returned {resumed.value!r}, "
                  f"uninterrupted run returned {clean.value!r}")
    elif resumed.memory.snapshot() != clean.memory.snapshot():
        case.fail("resumed run memory not bit-identical to "
                  "uninterrupted run")
    else:
        case.checkpoint_verified = True
    return case


# ----------------------------------------------------------------------
def _guarded_load_module() -> Module:
    """``main(p0)``: load IA0[p0] when p0 < 8, else -1.

    Profile-trained on the in-bounds path, the trace scheduler hoists the
    load above the guard as a dismissable (speculative) load; an
    out-of-bounds ``p0`` then sends its address past the memory image.
    """
    module = Module("dismissal_case")
    module.add_array("IA0", 16, 4, init=list(range(100, 116)))
    b = IRBuilder(module)
    b.function("main", [("p0", RegClass.INT)], ret_class=RegClass.INT)
    out = VReg("out", RegClass.INT)
    b.block("entry")
    addr = b.add(b.addr("IA0"), b.shl(b.param("p0"), 2))
    pred = b.cmplt(b.param("p0"), 8)
    b.br(pred, "then", "els")
    b.block("then")
    b.mov(b.load(addr, 0), dest=out)
    b.jmp("join")
    b.block("els")
    b.mov(-1, dest=out)
    b.jmp("join")
    b.block("join")
    b.ret(out)
    verify_module(module)
    return module


def verify_dismissal(config: MachineConfig = TRACE_28_200,
                     strategy: str = "trace") -> tuple[bool, str]:
    """The dismissable-load scenario: (passed, detail).

    Out-of-bounds argument: index 1<<20 puts the speculated load's
    address far beyond the data image, so the hardware must dismiss it
    (funny number in the target, no trap) while the committed path
    returns -1 — exactly what the interpreter computes.
    """
    module = _guarded_load_module()
    interp = Interpreter(module)
    interp.run("main", (2,))            # train: guard taken, load runs
    compiler = TraceCompiler(module, config, profile=interp.profile,
                             strategy=strategy)
    program = compiler.compile_module()
    stats = compiler.stats["main"]
    if stats.n_speculated_loads < 1:
        return False, "compiler did not speculate the guarded load"

    oob = 1 << 20
    ref = run_module(module, "main", (oob,))
    result = run_compiled(program, module, "main", (oob,))
    if result.stats.dismissed_loads < 1:
        return False, "speculated load was not dismissed at run time"
    if not _values_equal(result.value, ref.value):
        return False, (f"dismissal case returned {result.value!r}, "
                       f"interpreter returned {ref.value!r}")
    return True, ""


# ----------------------------------------------------------------------
def run_fuzz(seed: int = 0, count: int = 50,
             config: MachineConfig = TRACE_28_200,
             check_faults: bool = True, tracer=None,
             progress=None, strategy: str = "trace",
             jobs: int = 1) -> FuzzReport:
    """The full differential fuzz run: ``count`` cases from ``seed``.

    Case ``i`` uses program/fault seed ``seed + i``.  ``progress`` (an
    optional callable) receives each finished :class:`FuzzCase`.
    ``strategy`` selects the loop engine under test; ``"pipeline"`` is
    the pipeline-vs-trace differential scenario (see module docstring).
    ``jobs`` fans the cases out over worker processes; every case is
    seed-deterministic, so the report is identical at any job count.
    """
    from .runner import run_fuzz_cases

    trc = get_tracer(tracer)
    report = FuzzReport()
    with trc.span("fuzz.run", cat="harness", seed=seed, count=count,
                  strategy=strategy):
        report.cases.extend(run_fuzz_cases(
            seed, count, config, check_faults, strategy, jobs=jobs,
            tracer=tracer, progress=progress))
        if check_faults:
            report.dismissal_checked = True
            ok, detail = verify_dismissal(config, strategy)
            report.dismissal_verified = ok
            if not ok:
                trc.counters.inc("fuzz.failures")
                failed = FuzzCase(-1)
                failed.fail(f"dismissal scenario: {detail}")
                report.cases.append(failed)
    return report
