"""The heuristic-parameter search space.

Three candidate generators, composable and fully deterministic:

* :func:`grid_candidates` — a small structured grid over the priority
  weights, the wide-immediate deferral, the unit probe order, and the
  modulo placement order/budget;
* :func:`random_candidates` — seeded uniform samples of the continuous
  weight space (weights rounded so configs render and hash stably);
* :func:`multi_start_candidates` — the DEFAULT priority function with
  nonzero tie-break seeds: deterministic restarts that reshuffle only
  how equal-priority operations order.

:func:`candidate_space` concatenates them (DEFAULT always first, so
candidate index 0 *is* the baseline), deduplicates by value, and is the
one list both the driver and the per-case tasks see — a candidate's
index is stable across processes, reruns, and the result cache.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random

from ..sched.core import HeuristicParams

#: weight grids for the structured sweep (small on purpose: the grid
#: multiplies out; the random sampler covers the continuum)
_GRID_SLACK = (0.0, 0.25)
_GRID_DESC = (0.0, 0.05)
_GRID_DEPTH = (0.0, 0.125)

#: decimal places weights are rounded to — keeps ``repr`` (and with it
#: the compile-cache and tune-cache keys) stable across platforms
_ROUND = 4


def grid_candidates() -> list[HeuristicParams]:
    """The structured grid (32 weight/deferral/order combos + 2 modulo
    variants)."""
    out = []
    for w_slack, w_desc, w_depth, deferral, unit_order in \
            itertools.product(_GRID_SLACK, _GRID_DESC, _GRID_DEPTH,
                              (True, False), ("default", "reverse")):
        out.append(HeuristicParams(
            w_slack=w_slack, w_desc=w_desc, w_depth=w_depth,
            wide_imm_deferral=deferral, unit_order=unit_order))
    out.append(HeuristicParams(modulo_order="deadline"))
    out.append(HeuristicParams(modulo_budget_base=200,
                               modulo_budget_per_op=16))
    return out


def tiny_grid_candidates() -> list[HeuristicParams]:
    """One candidate per axis — the CI smoke job's grid."""
    return [
        HeuristicParams(w_slack=0.25),
        HeuristicParams(w_desc=0.05),
        HeuristicParams(w_depth=0.125),
        HeuristicParams(wide_imm_deferral=False),
        HeuristicParams(unit_order="reverse"),
        HeuristicParams(tie_seed=1),
    ]


def random_candidates(count: int, seed: int = 0) -> list[HeuristicParams]:
    """``count`` seeded uniform samples of the weight space."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        out.append(HeuristicParams(
            w_height=round(rng.uniform(0.5, 2.0), _ROUND),
            w_slack=round(rng.uniform(0.0, 0.5), _ROUND),
            w_desc=round(rng.uniform(0.0, 0.2), _ROUND),
            w_depth=round(rng.uniform(0.0, 0.5), _ROUND),
            wide_imm_deferral=rng.random() < 0.8,
            tie_seed=rng.randrange(1 << 20),
            unit_order=rng.choice(("default", "reverse")),
            modulo_order=rng.choice(("height", "deadline")),
        ))
    return out


def multi_start_candidates(count: int) -> list[HeuristicParams]:
    """DEFAULT with tie seeds 1..count — pure tie-break restarts."""
    return [HeuristicParams(tie_seed=s) for s in range(1, count + 1)]


def candidate_space(grid: bool = True, random_count: int = 0,
                    random_seed: int = 0, starts: int = 0,
                    tiny: bool = False) -> list[HeuristicParams]:
    """The full deduplicated candidate list; index 0 is DEFAULT."""
    candidates = [HeuristicParams.DEFAULT]
    if grid:
        candidates += tiny_grid_candidates() if tiny \
            else grid_candidates()
    candidates += random_candidates(random_count, random_seed)
    candidates += multi_start_candidates(starts)
    seen: set[HeuristicParams] = set()
    out = []
    for cand in candidates:
        if cand not in seen:
            seen.add(cand)
            out.append(cand)
    return out


def params_wire(params: HeuristicParams) -> str:
    """Canonical JSON text of one candidate (sorted keys)."""
    return json.dumps(params.to_json(), sort_keys=True)


def params_digest(params: HeuristicParams) -> str:
    """Short content digest of one candidate, for cache keys and
    reports."""
    return hashlib.sha256(params_wire(params).encode()).hexdigest()[:16]
