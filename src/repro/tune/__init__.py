"""The schedule autotuner: search the heuristic-parameter space.

PR 8's exact oracle proved the hand-coded scheduling priorities leave
optimality gaps; this package closes them cheaply — search the typed
:class:`~repro.sched.HeuristicParams` space instead of paying solver
time per compile:

* :mod:`~repro.tune.space` — candidate generation (grid + seeded
  random + multi-start tie seeds), deterministic and deduplicated;
* :mod:`~repro.tune.corpus` — what candidates are scored on: the
  400-seed generated-program corpus or the audit's kernel corpus, with
  graphs built once per case and rescheduled per candidate;
* :mod:`~repro.tune.driver` — the ``repro tune`` driver: parent-side
  content-addressed result cache, fan-out through the parallel
  runner's ``tune`` handler, exact-oracle bounds per case, winner
  re-verification, and the ``BENCH_tune.json`` report.
"""

from .corpus import (DEFAULT_SEED_COUNT, case_graphs, corpus_cases,
                     oracle_for_graphs, score_candidate)
from .driver import (DEFAULT_MAX_NODES, TUNE_SCHEMA, TuneCache, eval_key,
                     oracle_key, render_table, run_tune, tune_case)
from .space import (candidate_space, grid_candidates,
                    multi_start_candidates, params_digest, params_wire,
                    random_candidates, tiny_grid_candidates)

__all__ = [
    "DEFAULT_SEED_COUNT", "case_graphs", "corpus_cases",
    "oracle_for_graphs", "score_candidate",
    "DEFAULT_MAX_NODES", "TUNE_SCHEMA", "TuneCache", "eval_key",
    "oracle_key", "render_table", "run_tune", "tune_case",
    "candidate_space", "grid_candidates", "multi_start_candidates",
    "params_digest", "params_wire", "random_candidates",
    "tiny_grid_candidates",
]
