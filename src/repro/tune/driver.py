"""The ``repro tune`` driver: search, cache, certify, report.

The flow per run:

1. build the candidate space (:mod:`repro.tune.space`) and the case
   list (:mod:`repro.tune.corpus`);
2. check the content-addressed result cache *parent-side*: a candidate
   already scored on a case is never dispatched again, so a rerun over
   an unchanged corpus is pure cache hits — zero worker tasks;
3. fan the remaining (case × candidates) work out through the parallel
   runner's ``tune`` handler — one task per case, scoring every missing
   candidate against graphs built once (:func:`tune_case`);
4. ask the exact engine for each case's proven bound (cached the same
   way — bounds are candidate-independent);
5. pick winners, re-verify each improved case by rescheduling it from
   the winning config from scratch (no cache), and emit the
   ``BENCH_tune.json`` report: best-found totals vs the DEFAULT
   baseline vs the oracle's proven bounds, with the winning configs in
   reproducible wire form.

Cache entries are keyed by SHA-256 over the tune schema, machine
config, case identity, and the candidate's canonical JSON — the same
content-addressing discipline as the compile cache, so tuned results
can never alias across schema or config changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

from ..machine import TRACE_28_200, MachineConfig
from ..sched.core import HeuristicParams
from .corpus import case_graphs, corpus_cases, oracle_for_graphs, \
    score_candidate
from .space import candidate_space, params_digest, params_wire

TUNE_SCHEMA = 1

#: exact-engine node budget for the per-case bounds (the audit's own
#: default keeps bound rows comparable with ``repro audit``)
DEFAULT_MAX_NODES = 20_000


# ---------------------------------------------------------------------------
# the content-addressed result cache


def _config_text(config: MachineConfig) -> str:
    from ..cache.key import _dataclass_text

    return _dataclass_text(config)


def eval_key(case: dict, params: HeuristicParams,
             config: MachineConfig) -> str:
    """Cache key for one (case, candidate) score."""
    blob = "\n".join([
        f"tune-eval={TUNE_SCHEMA}",
        f"config={_config_text(config)}",
        f"mode={case['mode']}",
        f"case={case['case']}",
        f"params={params_wire(params)}",
    ])
    return hashlib.sha256(blob.encode()).hexdigest()


def oracle_key(case: dict, config: MachineConfig, max_nodes: int) -> str:
    """Cache key for one case's exact bound."""
    blob = "\n".join([
        f"tune-oracle={TUNE_SCHEMA}",
        f"config={_config_text(config)}",
        f"mode={case['mode']}",
        f"case={case['case']}",
        f"max_nodes={max_nodes}",
    ])
    return hashlib.sha256(blob.encode()).hexdigest()


class TuneCache:
    """A tiny content-addressed JSON store under the shared cache dir.

    One file per entry, atomic writes (write-temp + rename) so parallel
    runs sharing a directory never observe torn entries — the same
    discipline as the compile cache's disk tier.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        from ..cache import default_cache_dir

        base = directory if directory is not None else default_cache_dir()
        self.directory = os.path.join(base, "tune")

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".json")

    def get(self, key: str) -> Optional[dict]:
        try:
            with open(self._path(key)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, key: str, value: dict) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(value, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ---------------------------------------------------------------------------
# the per-case task (the runner's ``tune`` handler body)


def tune_case(payload: dict, tracer=None,
              config: Optional[MachineConfig] = None) -> dict:
    """Score one case: every listed candidate, plus the exact bound
    when asked.

    ``payload['candidates']`` is ``[[index, params-wire-dict], ...]``;
    the returned ``lengths`` maps each index (as a string — JSON round-
    trip safe) to the candidate's total schedule length / total II, or
    None when the candidate cannot schedule the case.  Graphs are built
    once; candidates only reschedule.
    """
    from ..obs import get_tracer

    tracer = get_tracer(tracer)
    config = config if config is not None else TRACE_28_200
    case = {k: v for k, v in payload.items()
            if k not in ("candidates", "need_oracle", "max_nodes")}
    graphs, disambigs = case_graphs(case, config)
    lengths: dict[str, Optional[int]] = {}
    for index, wire in payload["candidates"]:
        params = HeuristicParams.from_json(wire)
        lengths[str(index)] = score_candidate(case, graphs, disambigs,
                                              params, config)
    tracer.counters.inc("tune.cases")
    tracer.counters.inc("tune.evaluations", len(lengths))
    row = {"case": case["case"], "mode": case["mode"],
           "graphs": len(graphs), "lengths": lengths}
    if payload.get("need_oracle"):
        row["oracle"] = oracle_for_graphs(
            case, graphs, disambigs, config,
            payload.get("max_nodes", DEFAULT_MAX_NODES))
        tracer.counters.inc("tune.oracle_solves")
    return row


# ---------------------------------------------------------------------------
# the driver


def run_tune(corpus: str = "generated", seeds: Optional[int] = None,
             kernels: Optional[list[str]] = None, tiny: bool = False,
             grid: bool = True, random_count: int = 0,
             random_seed: int = 0, starts: int = 0, jobs: int = 1,
             max_nodes: int = DEFAULT_MAX_NODES,
             use_cache: bool = True, cache_dir: Optional[str] = None,
             with_oracle: bool = True, verify_winners: bool = True,
             tracer=None, config: Optional[MachineConfig] = None,
             progress=None) -> dict:
    """Search the parameter space over one corpus; the report dict.

    Deterministic at any ``jobs`` count: cases are scored independently
    and reduced in case order, and every candidate is itself
    deterministic.
    """
    from ..harness.runner import run_tasks
    from ..obs import get_tracer

    tracer = get_tracer(tracer)
    config = config if config is not None else TRACE_28_200
    candidates = candidate_space(grid=grid, random_count=random_count,
                                 random_seed=random_seed, starts=starts,
                                 tiny=tiny)
    cases = corpus_cases(corpus, seeds=seeds, kernels=kernels, tiny=tiny)
    cache = TuneCache(cache_dir) if use_cache else None

    # parent-side cache check: dispatch only what is missing
    cached: dict[str, dict] = {}        # case -> {"lengths", "oracle"}
    payloads = []
    hits = misses = 0
    for case in cases:
        lengths: dict[str, Optional[int]] = {}
        missing = []
        for index, params in enumerate(candidates):
            entry = cache.get(eval_key(case, params, config)) \
                if cache is not None else None
            if entry is not None:
                lengths[str(index)] = entry["length"]
                hits += 1
            else:
                missing.append([index, params.to_json()])
                misses += 1
        oracle = cache.get(oracle_key(case, config, max_nodes)) \
            if cache is not None and with_oracle else None
        if oracle is not None:
            hits += 1
        elif with_oracle:
            misses += 1
        cached[case["case"]] = {"lengths": lengths, "oracle": oracle}
        if missing or (with_oracle and oracle is None):
            payload = dict(case)
            payload["candidates"] = missing
            payload["need_oracle"] = with_oracle and oracle is None
            payload["max_nodes"] = max_nodes
            payloads.append(payload)

    outcomes = run_tasks("tune", payloads, jobs=jobs,
                         tracer=tracer) if payloads else []
    errors: list[str] = []
    for payload, outcome in zip(payloads, outcomes):
        name = payload["case"]
        if not outcome.ok:
            first = (outcome.error or "").strip().splitlines()
            errors.append(f"{name}: {first[-1] if first else '?'}")
            continue
        row = outcome.value
        cached[name]["lengths"].update(row["lengths"])
        if row.get("oracle") is not None:
            cached[name]["oracle"] = row["oracle"]
        if cache is not None:
            case = {k: v for k, v in payload.items()
                    if k not in ("candidates", "need_oracle", "max_nodes")}
            for index, wire in payload["candidates"]:
                length = row["lengths"][str(index)]
                cache.put(eval_key(case, candidates[index], config),
                          {"case": name, "params": wire,
                           "length": length})
            if row.get("oracle") is not None:
                cache.put(oracle_key(case, config, max_nodes),
                          row["oracle"])

    # reduce: per-case winners, gap bookkeeping
    rows = []
    baseline_total = best_total = oracle_total = 0
    gaps = gaps_closed = gaps_narrowed = improved_cases = 0
    for case in cases:
        name = case["case"]
        entry = cached[name]
        lengths = entry["lengths"]
        default = lengths.get("0")
        if default is None:
            errors.append(f"{name}: DEFAULT could not schedule the case")
            continue
        best_index, best = 0, default
        for index in range(1, len(candidates)):
            length = lengths.get(str(index))
            if length is not None and length < best:
                best_index, best = index, length
        oracle = entry["oracle"]
        row = {"case": name, "mode": case["mode"], "default": default,
               "best": best,
               "best_params": candidates[best_index].to_json(),
               "best_digest": params_digest(candidates[best_index]),
               "improvement": default - best}
        baseline_total += default
        best_total += best
        if oracle is not None:
            row["oracle"] = oracle["oracle"]
            row["oracle_status"] = oracle["status"]
            oracle_total += oracle["oracle"]
            if default > oracle["oracle"]:
                gaps += 1
                if best <= oracle["oracle"]:
                    gaps_closed += 1
                    row["gap_closed"] = True
                elif best < default:
                    gaps_narrowed += 1
        if best < default:
            improved_cases += 1
            rows.append(row)
        elif oracle is not None and default > oracle["oracle"]:
            rows.append(row)         # open gap: keep it visible
        if progress is not None:
            progress(row)

    report = {
        "schema": TUNE_SCHEMA,
        "config": "TRACE_28_200",
        "corpus": corpus,
        "tiny": tiny,
        "cases": len(cases),
        "candidates": len(candidates),
        "search": {"grid": grid, "random": random_count,
                   "random_seed": random_seed, "starts": starts},
        "budget_nodes": max_nodes,
        "cache": {"hits": hits, "misses": misses,
                  "dispatched_cases": len(payloads)},
        "baseline_total": baseline_total,
        "best_total": best_total,
        "oracle_total": oracle_total if with_oracle else None,
        "gaps": gaps, "gaps_closed": gaps_closed,
        "gaps_narrowed": gaps_narrowed,
        "improved_cases": improved_cases,
        "rows": rows,
        "errors": errors,
    }
    if verify_winners:
        report["verified"] = _verify_winners(report, cases, config)
    tracer.counters.inc("tune.cache_hits", hits)
    tracer.counters.inc("tune.cache_misses", misses)
    return report


def _verify_winners(report: dict, cases: list[dict],
                    config: MachineConfig) -> int:
    """Re-derive every improved case from its winning config, from
    scratch (fresh graphs, no cache).  A mismatch is a determinism bug
    and fails loudly."""
    by_name = {case["case"]: case for case in cases}
    verified = 0
    for row in report["rows"]:
        if row["improvement"] <= 0:
            continue
        case = by_name[row["case"]]
        params = HeuristicParams.from_json(row["best_params"])
        graphs, disambigs = case_graphs(case, config)
        length = score_candidate(case, graphs, disambigs, params, config)
        if length != row["best"]:
            raise AssertionError(
                f"{row['case']}: winning config failed to reproduce "
                f"(reported {row['best']}, re-derived {length})")
        row["reverified"] = True
        verified += 1
    return verified


def render_table(report: dict) -> str:
    """Human summary: one line per improved/open-gap case."""
    lines = [f"{'case':<16} {'mode':<6} {'default':>7} {'best':>5} "
             f"{'oracle':>6} {'status':<8} winner"]
    for r in report["rows"]:
        closed = " closed" if r.get("gap_closed") else ""
        lines.append(
            f"{r['case']:<16} {r['mode']:<6} {r['default']:>7} "
            f"{r['best']:>5} {r.get('oracle', '-'):>6} "
            f"{r.get('oracle_status', '-'):<8} "
            f"{r['best_digest']}{closed}")
    lines.append(
        f"-- {report['cases']} cases x {report['candidates']} candidates: "
        f"baseline {report['baseline_total']} -> best "
        f"{report['best_total']}"
        + (f" (oracle {report['oracle_total']})"
           if report.get("oracle_total") is not None else "")
        + f"; {report['gaps']} gaps, {report['gaps_closed']} closed, "
        f"{report['gaps_narrowed']} narrowed; cache "
        f"{report['cache']['hits']} hits / "
        f"{report['cache']['misses']} misses")
    for err in report["errors"]:
        lines.append(f"ERROR {err}")
    return "\n".join(lines)
