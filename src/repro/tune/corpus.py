"""Tuning corpora: what a candidate configuration is scored on.

Two corpora, three case modes:

* ``generated`` — the differential-fuzz program generator's seeds
  (``seed`` mode), walked trace-by-trace exactly like the optimality
  audit walks a kernel: select the likeliest trace, build its graph,
  schedule, mark, remove.  This is the corpus where PR 8's exact oracle
  proved the hand-coded priorities leave optimality gaps.
* ``kernels`` — the audit's own kernel corpus: ``trace`` mode (the
  golden dep-corpus preparations) and ``loop`` mode (the pipelinable
  kernels, scored by total initiation interval).

The trace walk is *priority-independent*: trace selection reads the
execution estimates and the evolving CFG, never the schedule, so every
candidate sees the same graph sequence.  :func:`case_graphs` exploits
that — it builds a case's graphs once and every candidate is scored by
rescheduling them, which is what makes searching dozens of configs per
case affordable.  The oracle bound per case is likewise
params-independent and computed once (:func:`oracle_for_graphs`).
"""

from __future__ import annotations

from typing import Optional

from ..analysis import compute_liveness
from ..disambig import Disambiguator, derive_memrefs
from ..errors import DisambigError, PipelineError, ScheduleError
from ..machine import MachineConfig
from ..sched import SchedulingOptions, build_acyclic_graph
from ..sched.core import HeuristicParams

#: the generated corpus audited by PR 8 (seeds 0..399)
DEFAULT_SEED_COUNT = 400

#: tiny slices for the CI smoke job
TINY_SEED_COUNT = 12


def corpus_cases(corpus: str, seeds: Optional[int] = None,
                 kernels: Optional[list[str]] = None,
                 tiny: bool = False) -> list[dict]:
    """The case payloads for one corpus, in deterministic order."""
    if corpus == "generated":
        count = seeds if seeds is not None else \
            (TINY_SEED_COUNT if tiny else DEFAULT_SEED_COUNT)
        return [{"mode": "seed", "case": f"seed{s}", "seed": s}
                for s in range(count)]
    if corpus == "kernels":
        from ..optimal.audit import (LOOP_KERNELS, TINY_LOOPS, TINY_TRACE,
                                     TRACE_CASES)
        traces = [(k, n, u) for (k, n, u) in TRACE_CASES
                  if k in TINY_TRACE and u == 0] if tiny else TRACE_CASES
        loops = TINY_LOOPS if tiny else LOOP_KERNELS
        if kernels:
            traces = [(k, n, u) for (k, n, u) in traces if k in kernels]
            loops = [k for k in loops if k in kernels]
        cases = [{"mode": "trace", "kernel": k, "n": n, "unroll": u,
                  "case": f"{k}/n{n}/u{u}"} for (k, n, u) in traces]
        cases += [{"mode": "loop", "kernel": k, "n": 16,
                   "case": f"{k}/loops"} for k in loops]
        return cases
    raise ValueError(f"unknown corpus {corpus!r} "
                     f"(expected 'generated' or 'kernels')")


# ---------------------------------------------------------------------------
# graph extraction (once per case; candidates reschedule)


def _module_for(case: dict):
    if case["mode"] == "seed":
        from ..workloads.generator import generate_program

        return generate_program(case["seed"])
    from ..harness.measure import prepare_modules
    from ..opt import inline
    from ..workloads import get_kernel
    import itertools as _it

    # the inliner tags blocks from a process-global counter; pin it per
    # case so graphs are identical no matter what ran earlier
    inline._inline_counter = _it.count()
    kernel = get_kernel(case["kernel"])
    unroll = case.get("unroll", 0)
    _, module = prepare_modules(kernel, case["n"], unroll=unroll,
                                inline=48)
    return module


def case_graphs(case: dict, config: MachineConfig) -> tuple[list, list]:
    """Build the case's dependence graphs once.

    Returns ``(graphs, disambigs)`` — parallel lists, one shared
    disambiguator per source function (its memoized answers are reused
    by every candidate's rescheduling).  Trace-walk order is the audit's
    own and is independent of scheduling priorities.
    """
    from ..trace import TraceSelector, clone_function
    from ..trace.profile import estimate_static

    module = _module_for(case)
    options = SchedulingOptions()
    graphs: list = []
    disambigs: list = []
    if case["mode"] == "loop":
        from ..pipeline import build_loop_graph, find_pipeline_loops

        for fname in sorted(module.functions):
            func = module.functions[fname]
            derive_memrefs(func)
            work = clone_function(func)
            disambig = Disambiguator(module)
            live_in = dict(compute_liveness(work).live_in)
            for _loop, pl, _why in find_pipeline_loops(work, live_in):
                if pl is None:
                    continue
                graphs.append(build_loop_graph(pl, config, disambig))
                disambigs.append(disambig)
        return graphs, disambigs
    for fname in sorted(module.functions):
        func = module.functions[fname]
        derive_memrefs(func)
        work = clone_function(func)
        disambig = Disambiguator(module)
        live_in = dict(compute_liveness(work).live_in)
        selector = TraceSelector(work, estimate_static(work))
        entry_labels = {work.entry.name}
        while True:
            trace = selector.next_trace()
            if trace is None:
                break
            graph = build_acyclic_graph(work, trace, disambig, config,
                                        options, live_in, entry_labels)
            graphs.append(graph)
            disambigs.append(disambig)
            for node in graph.splits():
                entry_labels.add(node.off_trace)
            selector.mark_scheduled(trace)
            for bname in trace.blocks:
                work.remove_block(bname)
    return graphs, disambigs


def score_candidate(case: dict, graphs: list, disambigs: list,
                    params: HeuristicParams,
                    config: MachineConfig) -> Optional[int]:
    """Total schedule length (trace/seed) or total II (loop) under one
    candidate, or None when any graph is infeasible for it."""
    from ..pipeline import ModuloScheduler
    from ..trace.scheduler import ListScheduler

    options = SchedulingOptions(params=params)
    total = 0
    for graph, disambig in zip(graphs, disambigs):
        try:
            if case["mode"] == "loop":
                total += ModuloScheduler(graph, config, disambig,
                                         options).run().ii
            else:
                total += ListScheduler(graph, config, disambig,
                                       options).run().n_instructions
        except (ScheduleError, PipelineError, DisambigError):
            return None
    return total


def oracle_for_graphs(case: dict, graphs: list, disambigs: list,
                      config: MachineConfig, max_nodes: int) -> dict:
    """The exact engine's per-case bound: proven-or-best total and the
    worst proof status across the case's graphs.

    Uses the DEFAULT heuristic as the incumbent upper bound, exactly
    like the audit; the result is independent of any tuned candidate.
    """
    from ..optimal.audit import _worst
    from ..optimal.scheduler import (exact_modulo_schedule,
                                     exact_trace_schedule)
    from ..pipeline import ModuloScheduler
    from ..trace.scheduler import ListScheduler

    options = SchedulingOptions()
    total = lower = 0
    statuses: list[str] = []
    for graph, disambig in zip(graphs, disambigs):
        if case["mode"] == "loop":
            sched = ModuloScheduler(graph, config, disambig, options).run()
            out = exact_modulo_schedule(graph, config, disambig, options,
                                        upper_ii=sched.ii,
                                        max_nodes=max_nodes)
        else:
            heur = ListScheduler(graph, config, disambig, options).run()
            out = exact_trace_schedule(graph, config, disambig, options,
                                       upper=heur.n_instructions,
                                       max_nodes=max_nodes)
        total += out.value
        lower += out.lower_bound
        statuses.append(out.status)
    return {"oracle": total, "lower_bound": lower,
            "status": _worst(statuses)}
