"""Scheduler interface and shared priority / critical-path utilities.

Both loop engines — the trace list scheduler and the iterative modulo
scheduler — are *strategies* over the same core: they consume the unified
dependence graph (:mod:`repro.sched.deps`), reserve machine resources
through the unified reservation model (:mod:`repro.sched.reservation`),
and order their work by the longest-path priorities computed here.

The priority math comes in two flavours matching the two graph modes:

* **acyclic** — one reverse topological sweep (trace graphs are built in
  program order, so every edge points forward);
* **modulo** — iterative Bellman-Ford relaxation under edge weights
  ``latency - 2 * II * dist`` (a kernel instruction is 2 beats), which
  also yields positive-cycle detection (RecMII) and the branch-pinned
  deadlines of the modulo scheduler.  RecMII therefore reuses the shared
  dependence graph directly: the recurrence bound is a property of the
  distance-annotated edges, not of any scheduler.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:                                    # pragma: no cover
    from ..disambig import Disambiguator
    from ..machine.config import MachineConfig
    from .deps import AcyclicGraph, DepEdge, ModuloGraph

#: flat modulo schedules deeper than this are rejected (prologue/epilogue
#: code growth is linear in the stage count; past this the transform
#: cannot pay)
MAX_STAGES = 8


@dataclass
class SchedulingOptions:
    """Knobs for ablation experiments, shared by both loop engines."""

    #: allow upward motion past splits (speculation); off = basic-block-ish
    speculation: bool = True
    #: allow upward motion past side entrances (join compensation)
    join_motion: bool = True
    #: fast FP exception mode (paper section 7): trapping float ops may be
    #: speculated because exceptions propagate as NaN/Inf instead of trapping
    fast_fp: bool = False
    #: schedule memory ops into potentially-conflicting ("maybe") bank slots
    #: and let the hardware bank-stall absorb real conflicts (section 6.4.4)
    bank_gamble: bool = True
    #: FORTRAN argument semantics: distinct pointer arguments never alias
    #: (the source language guarantees it); their bank residues stay
    #: unknown, so the gamble still applies
    fortran_args: bool = False


class Scheduler(ABC):
    """One scheduling strategy over the unified core.

    A scheduler is constructed around one dependence graph, one machine
    configuration, one disambiguator, and one set of options, and is run
    exactly once.  Concrete strategies:
    :class:`~repro.trace.scheduler.ListScheduler` (acyclic graphs) and
    :class:`~repro.pipeline.scheduler.ModuloScheduler` (modulo graphs).
    """

    def __init__(self, graph: Any, config: "MachineConfig",
                 disambiguator: "Disambiguator",
                 options: Optional[SchedulingOptions] = None) -> None:
        self.graph = graph
        self.config = config
        self.disambiguator = disambiguator
        self.options = options if options is not None else SchedulingOptions()

    @abstractmethod
    def run(self) -> Any:
        """Produce this strategy's schedule (call once)."""


# -- acyclic priorities -----------------------------------------------------

#: instruction-ordering edge weights in beats: a strict instruction
#: ordering costs one 2-beat instruction, a non-strict one costs nothing
_ACYCLIC_KIND_WEIGHT = {"inst_gt": 2, "inst_ge": 0}


def acyclic_heights(graph: "AcyclicGraph") -> list[int]:
    """Critical-path heights (beats) for list-scheduler priority order."""
    n = len(graph.nodes)
    heights = [0] * n
    for index in range(n - 1, -1, -1):
        best = 0
        for edge in graph.succs[index]:
            weight = edge.latency if edge.kind == "beat" else \
                _ACYCLIC_KIND_WEIGHT[edge.kind]
            best = max(best, weight + heights[edge.dst])
        heights[index] = best
    return heights


# -- modulo (cyclic) priorities ---------------------------------------------


def modulo_weight(edge: "DepEdge", ii: int) -> int:
    """Longest-path weight of one distance edge at initiation interval II."""
    return edge.latency - 2 * ii * edge.dist


def cycle_free(graph: "ModuloGraph", ii: int) -> bool:
    """No positive-weight cycle under weights ``latency - 2*II*dist``."""
    n = len(graph.ops)
    dist = [0] * n
    for _round in range(n + 1):
        changed = False
        for e in graph.edges:
            if e.dst >= n:          # edges into the branch never cycle
                continue
            w = modulo_weight(e, ii)
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                changed = True
        if not changed:
            return True
    return False


def rec_mii(graph: "ModuloGraph", hi: int) -> Optional[int]:
    """Smallest II in [1, hi] with no positive cycle, or None."""
    if cycle_free(graph, hi):
        lo, top = 1, hi
        while lo < top:             # feasibility is monotone in II
            mid = (lo + top) // 2
            if cycle_free(graph, mid):
                top = mid
            else:
                lo = mid + 1
        return lo
    return None


def critical_cycle(graph: "ModuloGraph",
                   rcmii: Optional[int]) -> Optional[list["DepEdge"]]:
    """The recurrence cycle that pins RecMII, as actual edges.

    A RecMII of ``r > 1`` means some dependence cycle has positive
    weight at ``II = r - 1``; this finds one such cycle — Bellman-Ford
    with predecessor tracking, then the standard walk-back extraction —
    and returns its edges in traversal order (each edge's ``dst`` is the
    next edge's ``src``; the last closes back to the first).  The
    cycle's latency and distance sums certify the bound:
    ``RecMII == ceil(sum(latency) / (2 * sum(dist)))``.

    Returns None when ``rcmii`` is None or <= 1 (no recurrence worth
    explaining: the bound comes from resources or the floor, not from a
    dependence cycle).
    """
    if rcmii is None or rcmii <= 1:
        return None
    ii = rcmii - 1
    n = len(graph.ops)
    dist = [0] * n
    pred: list[Optional["DepEdge"]] = [None] * n
    cycle_entry: Optional[int] = None
    for _round in range(n + 1):
        changed = False
        for e in graph.edges:
            if e.src >= n or e.dst >= n:
                continue
            w = modulo_weight(e, ii)
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                pred[e.dst] = e
                cycle_entry = e.dst
                changed = True
        if not changed:
            return None             # defensive: rcmii promised a cycle
    # n walk-back steps from the last-relaxed node land inside a cycle
    v = cycle_entry
    for _ in range(n):
        v = pred[v].src             # type: ignore[union-attr]
    cycle: list["DepEdge"] = []
    u = v
    while True:
        e = pred[u]                 # type: ignore[assignment]
        cycle.append(e)             # type: ignore[arg-type]
        u = e.src                   # type: ignore[union-attr]
        if u == v:
            break
    cycle.reverse()
    return cycle


def modulo_heights(graph: "ModuloGraph", ii: int) -> Optional[list[int]]:
    """Priority heights: longest latency-path to any sink at this II."""
    n = len(graph.ops)
    h = [0] * (n + 1)
    for _round in range(n + 2):
        changed = False
        for e in graph.edges:
            w = modulo_weight(e, ii)
            if h[e.dst] + w > h[e.src]:
                h[e.src] = h[e.dst] + w
                changed = True
        if not changed:
            return h[:n]
    return None                     # positive cycle (caller screens first)


def modulo_deadlines(graph: "ModuloGraph", ii: int) -> Optional[list[int]]:
    """Latest legal issue beat per op, or None when II is infeasible.

    The loop branch is pinned at flat beat ``2*(II-1)`` (last slot of
    stage 0) and reads its predicate at that beat; deadlines relax
    backward from it.  Unconstrained ops are capped by the stage limit.
    """
    n = len(graph.ops)
    cap = 2 * ii * MAX_STAGES - 1
    dl = [cap] * (n + 1)
    dl[graph.branch] = 2 * (ii - 1)
    for _round in range(n + 2):
        changed = False
        for e in graph.edges:
            limit = dl[e.dst] - e.latency + 2 * ii * e.dist
            if limit < dl[e.src]:
                dl[e.src] = limit
                changed = True
        if not changed:
            break
    else:
        return None
    if any(d < 0 for d in dl[:n]):
        return None
    return dl[:n]
