"""Scheduler interface and shared priority / critical-path utilities.

Both loop engines — the trace list scheduler and the iterative modulo
scheduler — are *strategies* over the same core: they consume the unified
dependence graph (:mod:`repro.sched.deps`), reserve machine resources
through the unified reservation model (:mod:`repro.sched.reservation`),
and order their work by the longest-path priorities computed here.

The priority math comes in two flavours matching the two graph modes:

* **acyclic** — one reverse topological sweep (trace graphs are built in
  program order, so every edge points forward);
* **modulo** — iterative Bellman-Ford relaxation under edge weights
  ``latency - 2 * II * dist`` (a kernel instruction is 2 beats), which
  also yields positive-cycle detection (RecMII) and the branch-pinned
  deadlines of the modulo scheduler.  RecMII therefore reuses the shared
  dependence graph directly: the recurrence bound is a property of the
  distance-annotated edges, not of any scheduler.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, ClassVar, Optional, Sequence, TypeVar

from ..errors import ParamError

if TYPE_CHECKING:                                    # pragma: no cover
    from ..disambig import Disambiguator
    from ..machine.config import MachineConfig
    from .deps import AcyclicGraph, DepEdge, ModuloGraph

#: flat modulo schedules deeper than this are rejected (prologue/epilogue
#: code growth is linear in the stage count; past this the transform
#: cannot pay)
MAX_STAGES = 8


# -- heuristic parameter layer ----------------------------------------------

#: legal functional-unit probe orders
UNIT_ORDERS = ("default", "reverse")
#: legal modulo placement orders
MODULO_ORDERS = ("height", "deadline")

#: the priority-term weight fields, in key order
_WEIGHT_FIELDS = ("w_height", "w_slack", "w_desc", "w_depth")


def _mix_tie(pos: int, seed: int) -> int:
    """Deterministic 32-bit permutation of a tie-break position.

    A nonzero ``tie_seed`` reshuffles how equal-priority nodes order,
    exploring schedules the positional tie-break never reaches.  Plain
    integer hashing, no :mod:`random`: the value must be identical
    across processes and Python versions.
    """
    x = ((pos + 1) * 0x9E3779B1 ^ (seed * 0x85EBCA6B)) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x045D9F3B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


@dataclass(frozen=True)
class HeuristicParams:
    """One point in the scheduling-priority search space.

    Every knob that changes *which* schedule the heuristic engines pick —
    never whether it is correct — lives here: the priority-term weights
    combined by :class:`AcyclicPriority` / :class:`ModuloPriority`, the
    wide-immediate late-slot deferral, the tie-break seed, the
    functional-unit probe order, and the modulo scheduler's backtracking
    budget and placement order.  The class is frozen and hashable so it
    can ride inside :class:`SchedulingOptions`, feed the content-addressed
    compile key, and serve as a tuner cache key.

    :data:`DEFAULT` (all-default construction) reproduces the historical
    hand-coded priority keys byte-for-byte: acyclic
    ``(-height, pos)``, modulo ``(-height, index)``, unit order as
    declared by the machine model, deferral on, budget ``50 + 8*n``.
    """

    #: weight of the critical-path height term (the classic key)
    w_height: float = 1.0
    #: weight of the slack term (acyclic: critical-path slack; modulo:
    #: the branch-pinned deadline) — urgent ops first when positive
    w_slack: float = 0.0
    #: weight of the transitive-descendant count (fan-out pressure)
    w_desc: float = 0.0
    #: weight of the latency-weighted depth from the trace roots
    w_depth: float = 0.0
    #: defer flexible wide-immediate ops to late slots (beat-0 immediate
    #: words are the scarce kind); DEFAULT on — this is the PR 8 fix
    wide_imm_deferral: bool = True
    #: 0 = positional tie-break (historical); nonzero = deterministic
    #: hash permutation of the positional tie-break
    tie_seed: int = 0
    #: functional-unit probe order: "default" (machine declaration
    #: order) or "reverse"
    unit_order: str = "default"
    #: modulo placement order: "height" (priority-scored, historical) or
    #: "deadline" (earliest deadline first, scored ties)
    modulo_order: str = "height"
    #: modulo backtracking budget = base + per_op * n_ops
    modulo_budget_base: int = 50
    modulo_budget_per_op: int = 8

    #: the byte-identical historical behavior (assigned after the class)
    DEFAULT: ClassVar["HeuristicParams"]

    def __post_init__(self) -> None:
        for name in _WEIGHT_FIELDS:
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise ParamError(f"{name} must be a number, "
                                 f"got {value!r}")
            if not math.isfinite(value):
                raise ParamError(f"{name} must be finite, got {value!r}")
            # normalise ints to floats so equal params hash and render
            # identically no matter how they were spelled (2 vs 2.0)
            object.__setattr__(self, name, float(value))
        if isinstance(self.tie_seed, bool) or \
                not isinstance(self.tie_seed, int):
            raise ParamError(f"tie_seed must be an int, "
                             f"got {self.tie_seed!r}")
        if not isinstance(self.wide_imm_deferral, bool):
            raise ParamError("wide_imm_deferral must be a bool, "
                             f"got {self.wide_imm_deferral!r}")
        if self.unit_order not in UNIT_ORDERS:
            raise ParamError(f"unit_order must be one of {UNIT_ORDERS}, "
                             f"got {self.unit_order!r}")
        if self.modulo_order not in MODULO_ORDERS:
            raise ParamError(f"modulo_order must be one of "
                             f"{MODULO_ORDERS}, got {self.modulo_order!r}")
        for name in ("modulo_budget_base", "modulo_budget_per_op"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 0:
                raise ParamError(f"{name} must be a non-negative int, "
                                 f"got {value!r}")
        if self.modulo_budget_base < 1:
            raise ParamError("modulo_budget_base must be >= 1")

    def to_json(self) -> dict[str, Any]:
        """Flat JSON-primitive dict; round-trips via :meth:`from_json`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, data: Any) -> "HeuristicParams":
        """Strict wire decode: unknown fields are rejected, not ignored.

        Params feed cache identity; silently dropping a misspelled field
        would return default-keyed artifacts for a config the caller
        thinks is tuned.
        """
        if not isinstance(data, dict):
            raise ParamError(f"params must be a JSON object, "
                             f"got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ParamError(
                f"unknown heuristic parameter(s): {', '.join(unknown)}")
        return cls(**{name: value for name, value in data.items()})

    def is_default(self) -> bool:
        return self == HeuristicParams.DEFAULT


HeuristicParams.DEFAULT = HeuristicParams()

_UnitT = TypeVar("_UnitT")


def order_units(units: Sequence[_UnitT],
                params: HeuristicParams) -> tuple[_UnitT, ...]:
    """Functional-unit probe order under ``params.unit_order``."""
    if params.unit_order == "reverse":
        return tuple(reversed(units))
    return tuple(units)


@dataclass(frozen=True)
class SchedulingOptions:
    """Knobs for ablation experiments, shared by both loop engines.

    Frozen and hashable: options participate in compile-cache identity
    (:func:`repro.cache.key.compile_key` renders every field), so an
    instance must never change after the key is taken.
    """

    #: allow upward motion past splits (speculation); off = basic-block-ish
    speculation: bool = True
    #: allow upward motion past side entrances (join compensation)
    join_motion: bool = True
    #: fast FP exception mode (paper section 7): trapping float ops may be
    #: speculated because exceptions propagate as NaN/Inf instead of trapping
    fast_fp: bool = False
    #: schedule memory ops into potentially-conflicting ("maybe") bank slots
    #: and let the hardware bank-stall absorb real conflicts (section 6.4.4)
    bank_gamble: bool = True
    #: FORTRAN argument semantics: distinct pointer arguments never alias
    #: (the source language guarantees it); their bank residues stay
    #: unknown, so the gamble still applies
    fortran_args: bool = False
    #: scheduling-priority heuristic parameters (see
    #: :class:`HeuristicParams`); DEFAULT = historical behavior
    params: HeuristicParams = HeuristicParams.DEFAULT

    def to_json(self) -> dict[str, Any]:
        """Flat JSON-primitive dict (params nested); round-trips."""
        data: dict[str, Any] = {
            f.name: getattr(self, f.name) for f in fields(self)
            if f.name != "params"}
        data["params"] = self.params.to_json()
        return data

    @classmethod
    def from_json(cls, data: Any) -> "SchedulingOptions":
        """Strict wire decode; unknown fields are rejected."""
        if not isinstance(data, dict):
            raise ParamError(f"options must be a JSON object, "
                             f"got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ParamError(
                f"unknown scheduling option(s): {', '.join(unknown)}")
        kwargs: dict[str, Any] = dict(data)
        if "params" in kwargs:
            kwargs["params"] = HeuristicParams.from_json(kwargs["params"])
        for f in fields(cls):
            if f.name != "params" and f.name in kwargs \
                    and not isinstance(kwargs[f.name], bool):
                raise ParamError(f"option {f.name} must be a bool, "
                                 f"got {kwargs[f.name]!r}")
        return cls(**kwargs)


class Scheduler(ABC):
    """One scheduling strategy over the unified core.

    A scheduler is constructed around one dependence graph, one machine
    configuration, one disambiguator, and one set of options, and is run
    exactly once.  Concrete strategies:
    :class:`~repro.trace.scheduler.ListScheduler` (acyclic graphs) and
    :class:`~repro.pipeline.scheduler.ModuloScheduler` (modulo graphs).
    """

    def __init__(self, graph: Any, config: "MachineConfig",
                 disambiguator: "Disambiguator",
                 options: Optional[SchedulingOptions] = None) -> None:
        self.graph = graph
        self.config = config
        self.disambiguator = disambiguator
        self.options = options if options is not None else SchedulingOptions()

    @abstractmethod
    def run(self) -> Any:
        """Produce this strategy's schedule (call once)."""


# -- acyclic priorities -----------------------------------------------------

#: instruction-ordering edge weights in beats: a strict instruction
#: ordering costs one 2-beat instruction, a non-strict one costs nothing
_ACYCLIC_KIND_WEIGHT = {"inst_gt": 2, "inst_ge": 0}


def acyclic_heights(graph: "AcyclicGraph") -> list[int]:
    """Critical-path heights (beats) for list-scheduler priority order."""
    n = len(graph.nodes)
    heights = [0] * n
    for index in range(n - 1, -1, -1):
        best = 0
        for edge in graph.succs[index]:
            weight = edge.latency if edge.kind == "beat" else \
                _ACYCLIC_KIND_WEIGHT[edge.kind]
            best = max(best, weight + heights[edge.dst])
        heights[index] = best
    return heights


def acyclic_depths(graph: "AcyclicGraph") -> list[int]:
    """Longest-path depth (beats) from the trace roots, per node."""
    n = len(graph.nodes)
    depths = [0] * n
    for index in range(n):          # edges point forward in a trace graph
        for edge in graph.succs[index]:
            weight = edge.latency if edge.kind == "beat" else \
                _ACYCLIC_KIND_WEIGHT[edge.kind]
            if depths[index] + weight > depths[edge.dst]:
                depths[edge.dst] = depths[index] + weight
    return depths


def descendant_counts(graph: "AcyclicGraph") -> list[int]:
    """Transitive-successor count per node (fan-out pressure).

    Bitset reachability over the forward-only trace graph: one reverse
    sweep, one big-int OR per edge.
    """
    n = len(graph.nodes)
    reach = [0] * n
    counts = [0] * n
    for index in range(n - 1, -1, -1):
        bits = 0
        for edge in graph.succs[index]:
            bits |= (1 << edge.dst) | reach[edge.dst]
        reach[index] = bits
        counts[index] = bits.bit_count()
    return counts


class AcyclicPriority:
    """The one ready-list priority key of the trace list scheduler.

    Both the scheduling loop and its stuck-ready-list diagnostics read
    :meth:`key`, so what the error message blames is by construction
    what the scheduler preferred.  Under
    :data:`HeuristicParams.DEFAULT` the key is exactly the historical
    ``(-height, pos)`` (a weight of 1.0 on small integer heights is
    exact float arithmetic).
    """

    def __init__(self, graph: "AcyclicGraph",
                 params: HeuristicParams) -> None:
        self.params = params
        self.heights = acyclic_heights(graph)
        n = len(graph.nodes)
        score = [params.w_height * h for h in self.heights]
        if params.w_slack or params.w_desc or params.w_depth:
            depths = acyclic_depths(graph)
            cp = max((d + h for d, h in zip(depths, self.heights)),
                     default=0)
            descs = descendant_counts(graph)
            for i in range(n):
                slack = cp - depths[i] - self.heights[i]
                score[i] += (params.w_desc * descs[i]
                             + params.w_depth * depths[i]
                             - params.w_slack * slack)
        if params.tie_seed:
            tie = [_mix_tie(node.pos, params.tie_seed)
                   for node in graph.nodes]
        else:
            tie = [node.pos for node in graph.nodes]
        self._key = [(-score[i], tie[i]) for i in range(n)]

    def key(self, index: int) -> tuple[float, int]:
        """Sort key: most urgent first under ascending sort."""
        return self._key[index]


# -- modulo (cyclic) priorities ---------------------------------------------


def modulo_weight(edge: "DepEdge", ii: int) -> int:
    """Longest-path weight of one distance edge at initiation interval II."""
    return edge.latency - 2 * ii * edge.dist


def cycle_free(graph: "ModuloGraph", ii: int) -> bool:
    """No positive-weight cycle under weights ``latency - 2*II*dist``."""
    n = len(graph.ops)
    dist = [0] * n
    for _round in range(n + 1):
        changed = False
        for e in graph.edges:
            if e.dst >= n:          # edges into the branch never cycle
                continue
            w = modulo_weight(e, ii)
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                changed = True
        if not changed:
            return True
    return False


def rec_mii(graph: "ModuloGraph", hi: int) -> Optional[int]:
    """Smallest II in [1, hi] with no positive cycle, or None."""
    if cycle_free(graph, hi):
        lo, top = 1, hi
        while lo < top:             # feasibility is monotone in II
            mid = (lo + top) // 2
            if cycle_free(graph, mid):
                top = mid
            else:
                lo = mid + 1
        return lo
    return None


def critical_cycle(graph: "ModuloGraph",
                   rcmii: Optional[int]) -> Optional[list["DepEdge"]]:
    """The recurrence cycle that pins RecMII, as actual edges.

    A RecMII of ``r > 1`` means some dependence cycle has positive
    weight at ``II = r - 1``; this finds one such cycle — Bellman-Ford
    with predecessor tracking, then the standard walk-back extraction —
    and returns its edges in traversal order (each edge's ``dst`` is the
    next edge's ``src``; the last closes back to the first).  The
    cycle's latency and distance sums certify the bound:
    ``RecMII == ceil(sum(latency) / (2 * sum(dist)))``.

    Returns None when ``rcmii`` is None or <= 1 (no recurrence worth
    explaining: the bound comes from resources or the floor, not from a
    dependence cycle).
    """
    if rcmii is None or rcmii <= 1:
        return None
    ii = rcmii - 1
    n = len(graph.ops)
    dist = [0] * n
    pred: list[Optional["DepEdge"]] = [None] * n
    cycle_entry: Optional[int] = None
    for _round in range(n + 1):
        changed = False
        for e in graph.edges:
            if e.src >= n or e.dst >= n:
                continue
            w = modulo_weight(e, ii)
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                pred[e.dst] = e
                cycle_entry = e.dst
                changed = True
        if not changed:
            return None             # defensive: rcmii promised a cycle
    # n walk-back steps from the last-relaxed node land inside a cycle
    v = cycle_entry
    for _ in range(n):
        v = pred[v].src             # type: ignore[union-attr]
    cycle: list["DepEdge"] = []
    u = v
    while True:
        e = pred[u]                 # type: ignore[assignment]
        cycle.append(e)             # type: ignore[arg-type]
        u = e.src                   # type: ignore[union-attr]
        if u == v:
            break
    cycle.reverse()
    return cycle


def modulo_heights(graph: "ModuloGraph", ii: int) -> Optional[list[int]]:
    """Priority heights: longest latency-path to any sink at this II."""
    n = len(graph.ops)
    h = [0] * (n + 1)
    for _round in range(n + 2):
        changed = False
        for e in graph.edges:
            w = modulo_weight(e, ii)
            if h[e.dst] + w > h[e.src]:
                h[e.src] = h[e.dst] + w
                changed = True
        if not changed:
            return h[:n]
    return None                     # positive cycle (caller screens first)


def modulo_deadlines(graph: "ModuloGraph", ii: int) -> Optional[list[int]]:
    """Latest legal issue beat per op, or None when II is infeasible.

    The loop branch is pinned at flat beat ``2*(II-1)`` (last slot of
    stage 0) and reads its predicate at that beat; deadlines relax
    backward from it.  Unconstrained ops are capped by the stage limit.
    """
    n = len(graph.ops)
    cap = 2 * ii * MAX_STAGES - 1
    dl = [cap] * (n + 1)
    dl[graph.branch] = 2 * (ii - 1)
    for _round in range(n + 2):
        changed = False
        for e in graph.edges:
            limit = dl[e.dst] - e.latency + 2 * ii * e.dist
            if limit < dl[e.src]:
                dl[e.src] = limit
                changed = True
        if not changed:
            break
    else:
        return None
    if any(d < 0 for d in dl[:n]):
        return None
    return dl[:n]


class ModuloPriority:
    """Placement order of the iterative modulo scheduler.

    Combines the height term with deadline urgency under the parameter
    weights; the descendant/depth terms are acyclic-only (a cyclic graph
    has no meaningful transitive-closure count).  Under
    :data:`HeuristicParams.DEFAULT` the order is exactly the historical
    ``sorted(range(n), key=lambda i: (-h[i], i))``.
    """

    def __init__(self, params: HeuristicParams, heights: list[int],
                 deadlines: list[int]) -> None:
        self.params = params
        n = len(heights)
        score = [params.w_height * heights[i]
                 - params.w_slack * deadlines[i] for i in range(n)]
        if params.tie_seed:
            tie = [_mix_tie(i, params.tie_seed) for i in range(n)]
        else:
            tie = list(range(n))
        self._key: list[tuple[Any, ...]]
        if params.modulo_order == "deadline":
            self._key = [(deadlines[i], -score[i], tie[i])
                         for i in range(n)]
        else:
            self._key = [(-score[i], tie[i]) for i in range(n)]

    def order(self) -> list[int]:
        """Op indices, most urgent first."""
        return sorted(range(len(self._key)), key=self._key.__getitem__)

    def budget(self) -> int:
        """Backtracking budget for one II attempt."""
        return (self.params.modulo_budget_base
                + self.params.modulo_budget_per_op * len(self._key))
