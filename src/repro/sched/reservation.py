"""The unified reservation model: one resource-legality authority.

Every machine resource the compiler owns is booked here, for both loop
engines: functional-unit slots, per-pair per-beat memory-issue ports,
load/store buses (64-bit transfers hold a 32-bit bus two beats), the
per-pair shared immediate word, and branch-test slots.

:class:`ReservationModel` wraps the machine layer's
:class:`~repro.machine.ReservationTable` — the one booking structure —
and keys resources *flat* (``ii=None``) for the trace list scheduler or
*modulo the initiation interval* for the modulo scheduler: an op at flat
instruction ``f`` then owns its resources in every kernel round, so two
ops conflict when their slots collide mod II (buses: beats mod 2*II,
wide holds wrapping).  Both views support *release* — the iterative
modulo scheduler evicts and re-places ops, so every placement returns a
:class:`Reservation` recording exactly which keys it took.

:class:`BankChecker` is the single implementation of memory-bank
legality and the section 6.4.4 bank-stall gamble: two accesses within
the bank-busy window must either provably miss each other's bank, or
gamble on the hardware stall ("maybe ... roll the dice"); a *same-beat*
pair must provably split across memory controllers, because the
simulator treats a same-beat same-controller pair as a compiler bug.  A
proven controller split implies provably-distinct banks — bank index is
congruent to controller index modulo ``n_controllers``, and the
disambiguator's congruence test for the finer modulus subsumes the
coarser one — so the same-beat case never needs a second query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..disambig import Answer, Disambiguator
from ..ir import Opcode, Operation, RegClass
from ..machine import (MachineConfig, ReservationTable, Unit, imm_value,
                       needs_imm_word)
from .core import SchedulingOptions

#: memory ops whose 64-bit transfer holds a 32-bit bus for two beats
WIDE_MEM_OPS = (Opcode.FLOAD, Opcode.FLOADS, Opcode.FSTORE)


def bus_plan(op: Operation, issue_beat: int,
             config: MachineConfig) -> tuple[str, int, int]:
    """(bus kind, first beat, beats held) for one memory op.

    A store's data crosses its bus two beats after issue; a load's
    result bus is busy while the value returns, ``lat_mem - 2`` beats
    after issue.
    """
    beats = 2 if op.opcode in WIDE_MEM_OPS else 1
    if op.is_store:
        return "store", issue_beat + 2, beats
    kind = "fload" if op.dest is not None \
        and op.dest.cls is RegClass.FLT else "iload"
    return kind, issue_beat + config.lat_mem - 2, beats


@dataclass
class Reservation:
    """One op's placement plus the exact resource keys it holds."""

    index: int                    #: graph node / rotated-op index
    f: int                        #: flat schedule instruction
    pair: int
    unit: Unit
    beat: int                     #: flat issue beat: 2*f + unit offset
    m: int                        #: f mod II (flat ``f`` when not modulo)
    mem_key: Optional[tuple] = None
    bus_kind: Optional[str] = None
    bus_beats: tuple[int, ...] = ()
    imm_key: Optional[tuple] = None
    imm_val: object = None


class ReservationModel:
    """Slot/port/bus/immediate/branch bookkeeping, flat or kernel-periodic.

    A keying view over one :class:`~repro.machine.ReservationTable`:
    ``ii=None`` books resources at absolute instructions and beats (the
    trace engine's view); an integer II books them modulo the kernel (the
    modulo engine's view).  Owner tokens are the caller's op indices, so
    :meth:`conflicts` can name exactly whose eviction would free a slot.
    """

    def __init__(self, config: MachineConfig,
                 ii: Optional[int] = None) -> None:
        self.config = config
        self.ii = ii
        self.table = ReservationTable(config)

    def _slot(self, f: int) -> int:
        return f if self.ii is None else f % self.ii

    def _wrap_beat(self, beat: int) -> int:
        return beat if self.ii is None else beat % (2 * self.ii)

    # ------------------------------------------------------------------
    def bus_plan(self, op: Operation,
                 issue_beat: int) -> tuple[str, tuple[int, ...]]:
        """(bus kind, occupied beats in this model's keying)."""
        kind, start, beats = bus_plan(op, issue_beat, self.config)
        return kind, tuple(self._wrap_beat(start + k) for k in range(beats))

    # ------------------------------------------------------------------
    def conflicts(self, op: Operation, f: int, pair: int,
                  unit: Unit) -> set[int]:
        """Ops whose eviction would free this slot (empty set = free)."""
        m = self._slot(f)
        beat = 2 * f + unit.beat_offset
        out: set[int] = set()
        occupant = self.table.unit_owner(m, pair, unit)
        if occupant is not None:
            out.add(occupant)
        if op.is_memory:
            occupant = self.table.mem_issue_owner(m, pair, unit.beat_offset)
            if occupant is not None:
                out.add(occupant)
            kind, beats = self.bus_plan(op, beat)
            for b in beats:
                holders = self.table.bus_holders(kind, b)
                excess = len(holders) + 1 - self.table.bus_limit(kind)
                if excess > 0:
                    out.update(holders[:excess])
        if needs_imm_word(op):
            value = imm_value(op)
            current = self.table.imm_entry(m, pair, unit.beat_offset)
            if current is not None and current[0] != value:
                out.update(current[1])
        return out

    def place(self, op: Operation, index: int, f: int, pair: int,
              unit: Unit) -> Reservation:
        """Take the slot's resources (the slot must be conflict-free)."""
        m = self._slot(f)
        beat = 2 * f + unit.beat_offset
        res = Reservation(index, f, pair, unit, beat, m)
        self.table.take_unit(m, pair, unit, owner=index)
        if op.is_memory:
            res.mem_key = (m, pair, unit.beat_offset)
            self.table.take_mem_issue(m, pair, unit.beat_offset, owner=index)
            kind, beats = self.bus_plan(op, beat)
            res.bus_kind, res.bus_beats = kind, beats
            for b in beats:
                self.table.take_bus(kind, b, owner=index)
        if needs_imm_word(op):
            value = imm_value(op)
            res.imm_key, res.imm_val = (m, pair, unit.beat_offset), value
            self.table.take_imm(m, pair, unit.beat_offset, value, owner=index)
        return res

    def release(self, res: Reservation) -> None:
        """Give back everything a reservation holds (for eviction)."""
        self.table.release_unit(res.m, res.pair, res.unit)
        if res.mem_key is not None:
            self.table.release_mem_issue(*res.mem_key)
        if res.bus_kind is not None:
            for b in res.bus_beats:
                self.table.release_bus(res.bus_kind, b, owner=res.index)
        if res.imm_key is not None:
            self.table.release_imm(*res.imm_key, owner=res.index)

    # -- branch-test slots (trace engine) ------------------------------
    def branch_free(self, f: int, pair: int) -> bool:
        return self.table.branch_free(self._slot(f), pair)

    def take_branch(self, f: int, pair: int, index: int = -1) -> None:
        self.table.take_branch(self._slot(f), pair, owner=index)

    def release_branch(self, f: int, pair: int) -> None:
        self.table.release_branch(self._slot(f), pair)

    def branches_in(self, f: int) -> int:
        return self.table.branches_in(self._slot(f))


#: legacy alias: the pipeline engine's modulo reservation table is the
#: unified model in modulo keying
ModuloTable = ReservationModel


# ---------------------------------------------------------------------------
# bank legality and the bank-stall gamble


#: :meth:`BankChecker.check` verdicts
OK = "ok"
GAMBLE = "gamble"
ILLEGAL = "illegal"


class BankChecker:
    """Answers, in exactly one place, whether two memory accesses within
    the bank-busy window may issue ``delta`` beats apart.

    Engines supply the pair's references (or ``None`` when incomparable —
    an unknown reference can always collide) and an optional memo key;
    disambiguation answers depend only on the reference pair, never on
    candidate beats, so memoized queries stay valid across a whole
    schedule search.
    """

    def __init__(self, disambiguator: Disambiguator, config: MachineConfig,
                 options: SchedulingOptions) -> None:
        self.disambiguator = disambiguator
        self.config = config
        self.options = options
        self._memo: dict[tuple, Answer] = {}

    @property
    def window(self) -> int:
        """Beat separations strictly inside this can hit a busy bank."""
        return self.config.bank_busy_beats

    def check(self, key: Optional[tuple], refs: Optional[tuple],
              same_beat: bool) -> str:
        """Verdict for one in-window pair of memory accesses.

        Same-beat pairs must provably split across controllers (the
        simulator faults otherwise), which also proves distinct banks —
        see the module docstring.  Offset pairs are illegal on a proven
        shared bank, fine on a proven split, and a *gamble* in between
        (legal only under ``options.bank_gamble``; the scheduler marks
        the op so the simulator can account for the stall risk).
        """
        if same_beat:
            answer = self.controller_answer(key, refs)
            return OK if answer is Answer.NO else ILLEGAL
        answer = self.bank_answer(key, refs)
        if answer is Answer.YES:
            return ILLEGAL
        if answer is Answer.MAYBE:
            return GAMBLE if self.options.bank_gamble else ILLEGAL
        return OK

    # ------------------------------------------------------------------
    def bank_answer(self, key: Optional[tuple],
                    refs: Optional[tuple]) -> Answer:
        return self._query("bank", key, refs)

    def controller_answer(self, key: Optional[tuple],
                          refs: Optional[tuple]) -> Answer:
        return self._query("ctrl", key, refs)

    def _query(self, kind: str, key: Optional[tuple],
               refs: Optional[tuple]) -> Answer:
        memo_key = None if key is None else (kind, *key)
        if memo_key is not None:
            hit = self._memo.get(memo_key)
            if hit is not None:
                return hit
        if refs is None:
            answer = Answer.MAYBE
        elif kind == "ctrl":
            answer = self.disambiguator.controller_equal(
                refs[0], refs[1], self.config.n_controllers)
        else:
            answer = self.disambiguator.bank_equal(
                refs[0], refs[1], self.config.total_banks)
        if memo_key is not None:
            self._memo[memo_key] = answer
        return answer


# ---------------------------------------------------------------------------
# resource-constrained lower bound (ResMII)

#: categories restricted to the integer ALUs (4 per pair)
_IALU_ONLY = {"int_cmp", "int_mul", "int_div", "load", "store"}
#: categories restricted to the F-board adder (1 per pair)
_FALU_ONLY = {"flt_add", "flt_cmp", "cvt"}
#: categories restricted to the F-board multiplier (1 per pair)
_FMUL_ONLY = {"flt_mul", "flt_div"}


def res_mii(ops: list[Operation], config: MachineConfig) -> int:
    """Resource-constrained lower bound on II, in instructions.

    Counts what one iteration consumes against what one kernel
    instruction supplies (paper section 5's per-pair functional units,
    the per-pair per-beat memory ports, and the load/store buses — wide
    ops hold a bus two beats).
    """
    pairs = config.n_pairs
    ialu = falu = fmul = flexible = n_mem = 0
    bus_beats = {"iload": 0, "fload": 0, "store": 0}
    for op in ops:
        cat = op.category.value
        if cat in _IALU_ONLY:
            ialu += 1
        elif cat in _FALU_ONLY:
            falu += 1
        elif cat in _FMUL_ONLY:
            fmul += 1
        else:
            flexible += 1
        if op.is_memory:
            n_mem += 1
            beats = 2 if op.opcode in WIDE_MEM_OPS else 1
            if op.is_store:
                bus_beats["store"] += beats
            elif op.dest is not None and op.dest.cls is RegClass.FLT:
                bus_beats["fload"] += beats
            else:
                bus_beats["iload"] += beats
    bound = max(
        math.ceil(ialu / (4 * pairs)),
        math.ceil(falu / pairs),
        math.ceil(fmul / pairs),
        math.ceil((ialu + falu + fmul + flexible) / (6 * pairs)),
        # one memory port per pair per beat, 2 beats per instruction
        math.ceil(n_mem / (2 * pairs)),
        math.ceil(bus_beats["iload"] / (2 * config.n_load_buses)),
        math.ceil(bus_beats["fload"] / (2 * config.n_load_buses)),
        math.ceil(bus_beats["store"] / (2 * config.n_store_buses)),
    )
    return max(1, bound)
