"""The unified scheduling core shared by both loop engines.

One dependence engine, one resource model, one scheduler interface:

* :mod:`~repro.sched.deps` — the dependence-graph builder, parameterized
  acyclic (trace) vs. modulo (iteration-distance) mode.
* :mod:`~repro.sched.reservation` — the reservation model (flat or
  modulo-II keying), bank legality + the bank-stall gamble, ResMII.
* :mod:`~repro.sched.core` — the :class:`Scheduler` strategy interface,
  scheduling options, and shared priority/critical-path utilities.

The trace list scheduler (:mod:`repro.trace.scheduler`) and the modulo
scheduler (:mod:`repro.pipeline.scheduler`) are thin strategies over
this package.
"""

from .core import (MAX_STAGES, MODULO_ORDERS, UNIT_ORDERS, AcyclicPriority,
                   HeuristicParams, ModuloPriority, Scheduler,
                   SchedulingOptions, acyclic_depths, acyclic_heights,
                   critical_cycle, cycle_free, descendant_counts,
                   modulo_deadlines, modulo_heights, modulo_weight,
                   order_units, rec_mii)
from .deps import (MAX_DIST, AcyclicGraph, DepEdge, DepGraph, Edge,
                   LoopDep, LoopGraph, ModuloGraph, Node, TraceGraph,
                   build_acyclic_graph, build_loop_graph,
                   build_modulo_graph, build_trace_graph, linearize,
                   store_load_latency)
from .reservation import (GAMBLE, ILLEGAL, OK, WIDE_MEM_OPS, BankChecker,
                          ModuloTable, Reservation, ReservationModel,
                          bus_plan, res_mii)

__all__ = [
    "MAX_STAGES", "MODULO_ORDERS", "UNIT_ORDERS", "AcyclicPriority",
    "HeuristicParams", "ModuloPriority", "Scheduler", "SchedulingOptions",
    "acyclic_depths", "acyclic_heights", "critical_cycle", "cycle_free",
    "descendant_counts", "modulo_deadlines", "modulo_heights",
    "modulo_weight", "order_units", "rec_mii",
    "MAX_DIST", "AcyclicGraph", "DepEdge", "DepGraph", "Edge", "LoopDep",
    "LoopGraph", "ModuloGraph", "Node", "TraceGraph",
    "build_acyclic_graph", "build_loop_graph", "build_modulo_graph",
    "build_trace_graph", "linearize", "store_load_latency",
    "GAMBLE", "ILLEGAL", "OK", "WIDE_MEM_OPS", "BankChecker",
    "ModuloTable", "Reservation", "ReservationModel", "bus_plan",
    "res_mii",
]
