"""The unified dependence engine: one builder, two graph modes.

Both loop engines consume dependences produced here.

**Acyclic mode** (:func:`build_acyclic_graph`) serves the trace list
scheduler: the trace is linearised into *nodes* — real operations,
conditional-branch *splits*, side-entrance *joins* (zero-resource
pseudo-ops marking where an off-trace edge enters), and terminator/call
barriers — and edges constrain the scheduler:

``beat``      consumer issue-beat >= producer issue-beat + latency
``inst_ge``   consumer instruction >= producer instruction
``inst_gt``   consumer instruction >  producer instruction

The *absence* of an edge is where trace scheduling's power lives: an
operation after a split with no ``split -> op`` edge may be *speculated*
above the branch (loads become dismissable opcodes), and an operation
after a join with no ``join -> op`` edge may move above the side entrance
— the compiler then places a *compensation copy* of it on the entering
edge (detected after scheduling, see ``trace/compiler.py``).  This is
also where the cross-trace timing rule lives (see the split handling in
:func:`build_acyclic_graph`): a value the off-trace path reads must have
left the pipeline before the branch transfers control, so a latency-``L``
producer (``L >= 2``) gets a ``beat`` edge of ``L - 2`` into the split.

**Modulo mode** (:func:`build_modulo_graph`) serves the software
pipeliner: nodes are the rotated-iteration ops plus one pseudo-node for
the loop branch, and every edge carries ``(latency, dist)`` — op ``dst``
of iteration ``a + dist`` may issue no earlier than ``latency`` beats
after op ``src`` of iteration ``a``.  Register edges are RAW only (modulo
variable expansion renames every per-iteration definition, so WAR/WAW
never constrain the schedule); memory edges probe the disambiguator at
increasing iteration distance and keep the *smallest* conflicting
distance, shifting references across iterations by ``coeff * d * step``
for every annotation variable naming a loop IV.

Shared between the modes and defined exactly once: the latency of every
edge comes from :func:`~repro.machine.resources.latency_table`, and the
no-store-forwarding rule (:func:`store_load_latency`) prices a
store-to-load ordering at ``max(1, lat_mem - 2)`` beats in both worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Protocol

from ..analysis import CFG, compute_liveness
from ..disambig import Answer, Disambiguator
from ..ir import (Category, Function, MemRef, Opcode, Operation, RegClass,
                  VReg)
from ..machine import MachineConfig, latency_table
from .core import SchedulingOptions

#: iteration-distance horizon for memory probing in modulo mode: the
#: scheduler caps the flat schedule at MAX_STAGES stages, and the longest
#: latency (FDIV, 25 beats) spans at most ceil(25/4) extra kernel rounds
#: at the minimum II of 2 — constraints at larger distances are satisfied
#: by any legal flat schedule, so probing past this is pure waste
MAX_DIST = 16


class TraceLike(Protocol):
    """What acyclic mode needs from a trace: its block names, in order."""

    blocks: Iterable[str]


class LoopLike(Protocol):
    """What modulo mode needs from a matched pipeline loop."""

    rot_ops: list[Operation]
    steps: dict[VReg, int]
    pred: VReg


@dataclass
class Node:
    """One schedulable element of a linearised trace (acyclic mode)."""

    index: int
    kind: str                 # "op" | "split" | "join" | "term" | "call"
    op: Optional[Operation]   # None for joins
    block: str
    pos: int                  # linear position (original program order)
    #: for splits: the off-trace successor label
    off_trace: Optional[str] = None
    #: for splits: the on-trace successor label (branch retarget bookkeeping)
    on_trace: Optional[str] = None
    #: memory-reference generation: two memory ops' MemRefs are comparable
    #: only when no annotation variable was redefined between them, i.e.
    #: when they carry the same generation number
    mem_gen: int = 0

    @property
    def schedulable(self) -> bool:
        return True


@dataclass
class DepEdge:
    """One dependence edge, in either mode.

    Acyclic mode uses kinds ``beat``/``inst_ge``/``inst_gt`` with
    ``dist == 0``; modulo mode uses kinds ``reg``/``ctrl``/``mem`` with
    an iteration distance.  ``verdict`` records why a memory edge exists
    (the disambiguator's answer, or why it was never asked) for
    ``repro explain-deps``.
    """

    src: int
    dst: int
    kind: str
    latency: int = 0
    dist: int = 0             #: iteration distance (0 = same iteration)
    verdict: Optional[str] = None


#: legacy aliases: the trace engine's edge type and the pipeline engine's
#: distance-annotated edge type are now literally the same class
Edge = DepEdge
LoopDep = DepEdge


class DepGraph:
    """Edge bookkeeping shared by both graph modes."""

    def __init__(self, n_nodes: int) -> None:
        self.edges: list[DepEdge] = []
        self.succs: list[list[DepEdge]] = [[] for _ in range(n_nodes)]
        self.preds: list[list[DepEdge]] = [[] for _ in range(n_nodes)]

    def _add(self, edge: DepEdge) -> None:
        self.edges.append(edge)
        self.succs[edge.src].append(edge)
        self.preds[edge.dst].append(edge)


class AcyclicGraph(DepGraph):
    """Nodes + dependence edges for one trace."""

    def __init__(self, nodes: list[Node]) -> None:
        super().__init__(len(nodes))
        self.nodes = nodes
        self.pred_count: list[int] = [0] * len(nodes)

    def add_edge(self, src: int, dst: int, kind: str, latency: int = 0,
                 verdict: Optional[str] = None) -> None:
        self._add(DepEdge(src, dst, kind, latency, 0, verdict))
        self.pred_count[dst] += 1

    def splits(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "split"]

    def joins(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "join"]


#: legacy alias for the trace engine's graph type
TraceGraph = AcyclicGraph


class ModuloGraph(DepGraph):
    """Rotated ops + distance edges for one pipelinable loop."""

    def __init__(self, loop: LoopLike, config: MachineConfig) -> None:
        self.loop = loop
        self.config = config
        self.ops: list[Operation] = loop.rot_ops
        #: pseudo-node index for the loop branch
        self.branch: int = len(self.ops)
        super().__init__(len(self.ops) + 1)
        #: rotated-iteration definition point of each register
        self.defs_at: dict[VReg, int] = {}
        for i, op in enumerate(self.ops):
            if op.dest is not None:
                self.defs_at[op.dest] = i
        #: memref annotation variable -> per-iteration step
        self.iv_names: dict[str, int] = {
            reg.name: step for reg, step in loop.steps.items()}
        self._loop_def_names = {r.name for r in self.defs_at}

    def add_edge(self, src: int, dst: int, latency: int, dist: int,
                 kind: str, verdict: Optional[str] = None) -> None:
        self._add(DepEdge(src, dst, kind, latency, dist, verdict))

    # ------------------------------------------------------------------
    def use_distance(self, use_index: int, src: VReg) -> Optional[int]:
        """Iteration distance of a register read, or None for invariants."""
        d = self.defs_at.get(src)
        if d is None:
            return None
        return 0 if d < use_index else 1

    def stride(self, op_index: int) -> int:
        """Per-iteration address delta of a memory op's reference."""
        ref = self.ops[op_index].memref
        if ref is None:
            return 0
        return sum(coeff * self.iv_names[var]
                   for var, coeff in ref.coeffs if var in self.iv_names)

    def shiftable_ref(self, op_index: int) -> Optional[MemRef]:
        """The op's memref when it can be advanced across iterations.

        A reference is shiftable when every annotation variable is either
        a loop IV (shift by ``coeff * d * step``) or loop-invariant
        (contributes nothing).  A variable naming a loop-varying non-IV
        register makes cross-iteration comparison unsound — treat as
        unknown.
        """
        ref = self.ops[op_index].memref
        if ref is None:
            return None
        for var, _coeff in ref.coeffs:
            if var in self._loop_def_names and var not in self.iv_names:
                return None
        return ref

    def shifted_ref(self, op_index: int, dist: int) -> Optional[MemRef]:
        """The op's reference as seen ``dist`` iterations later."""
        ref = self.shiftable_ref(op_index)
        if ref is None:
            return None
        delta = self.stride(op_index) * dist
        return ref.shifted(delta) if delta else ref


#: legacy alias for the pipeline engine's graph type
LoopGraph = ModuloGraph


# ---------------------------------------------------------------------------
# shared pricing


def store_load_latency(config: MachineConfig) -> int:
    """Beats a load must trail a conflicting store: no store forwarding,
    so the load may not sample memory until the store's write beat."""
    return max(1, config.lat_mem - 2)


# ---------------------------------------------------------------------------
# acyclic mode


def linearize(func: Function, trace: TraceLike,
              entry_labels: Optional[set[str]] = None) -> list[Node]:
    """Build the node sequence for a trace.

    ``entry_labels`` are labels targeted from outside the working function
    (already-compiled branches, the function entry): a mid-trace block in
    that set has a side entrance even if no IR predecessor shows it.
    """
    nodes: list[Node] = []
    preds = CFG.build(func, tolerant=True).preds
    entry_labels = entry_labels or set()
    pos = 0

    def add(kind: str, op: Optional[Operation], block: str, **kw) -> Node:
        nonlocal pos
        node = Node(len(nodes), kind, op, block, pos, **kw)
        nodes.append(node)
        pos += 1
        return node

    blocks = list(trace.blocks)
    for bi, bname in enumerate(blocks):
        block = func.block(bname)
        if bi > 0:
            on_trace_pred = blocks[bi - 1]
            side = [p for p in preds[bname] if p != on_trace_pred]
            if side or bname in entry_labels:
                add("join", None, bname)
        for op in block.body:
            add("call" if op.is_call else "op", op, bname)
        term = block.terminator
        last = bi == len(blocks) - 1
        if term.opcode is Opcode.BR:
            then_name, else_name = (lbl.name for lbl in term.labels)
            if not last and then_name == blocks[bi + 1]:
                off, on = else_name, then_name
            elif not last and else_name == blocks[bi + 1]:
                off, on = then_name, else_name
            else:
                # trace ends at this branch: both targets are off-trace;
                # treat the less likely (else) side as fallthrough
                off, on = then_name, else_name
            add("split", term, bname, off_trace=off, on_trace=on)
        elif term.opcode is Opcode.JMP:
            if last:
                add("term", term, bname)
            # on-trace JMP needs no node: pure fallthrough in the schedule
        else:   # RET / HALT
            add("term", term, bname)
    return nodes


def _speculatable(op: Operation, live_off: set[VReg],
                  options: SchedulingOptions) -> bool:
    """May ``op`` move above a split whose off-trace edge has ``live_off``?"""
    if not options.speculation:
        return False
    if op.has_side_effect or op.is_call:
        return False
    if op.dest is not None and op.dest in live_off:
        return False            # would clobber a value the other path reads
    if op.is_load:
        return True             # becomes a dismissable load
    if op.can_trap:
        # trapping FP ops are safe to hoist only in fast mode; integer
        # divide traps are always precise
        fp = op.category in (Category.FLT_ADD, Category.FLT_MUL,
                             Category.FLT_DIV, Category.FLT_CMP,
                             Category.CVT)
        return fp and options.fast_fp
    return True


def _may_move_above_join(node: Node) -> bool:
    """Joins: anything but control transfers and calls may move above (the
    compensation copy re-executes it on the entering edge)."""
    return node.kind == "op"


def _memrefs_comparable(nodes: list[Node], a: Node, b: Node) -> bool:
    """MemRef variable values must be stable between the two positions."""
    assert a.op is not None and b.op is not None
    ra, rb = a.op.memref, b.op.memref
    if ra is None or rb is None:
        return False
    names = {v for v, _ in ra.coeffs} | {v for v, _ in rb.coeffs}
    if not names:
        return True
    for node in nodes[a.index + 1:b.index]:
        if node.op is not None and node.op.dest is not None \
                and node.op.dest.cls is RegClass.INT \
                and node.op.dest.name in names:
            return False
    return True


def build_acyclic_graph(func: Function, trace: TraceLike,
                        disambiguator: Disambiguator,
                        config: MachineConfig,
                        options: Optional[SchedulingOptions] = None,
                        live_in_map: Optional[dict[str, set[VReg]]] = None,
                        entry_labels: Optional[set[str]] = None
                        ) -> AcyclicGraph:
    """Linearise the trace and add every scheduling constraint.

    ``live_in_map`` supplies live-in sets per block name (computed on the
    original, complete function — off-trace targets may already have been
    compiled out of the working function).
    """
    if options is None:
        options = SchedulingOptions()
    nodes = linearize(func, trace, entry_labels)
    graph = AcyclicGraph(nodes)
    if live_in_map is None:
        live_in_map = compute_liveness(func, CFG.build(func, True)).live_in
    latency = latency_table(config)

    # memory-reference generations (see Node.mem_gen)
    ref_vars: set[str] = set()
    for node in nodes:
        if node.op is not None and node.op.memref is not None:
            ref_vars.update(v for v, _ in node.op.memref.coeffs)
    generation = 0
    for node in nodes:
        node.mem_gen = generation
        op = node.op
        if op is not None and op.dest is not None \
                and op.dest.cls is RegClass.INT and op.dest.name in ref_vars:
            generation += 1

    # --- register dependences -----------------------------------------
    last_def: dict[VReg, int] = {}
    readers_since_def: dict[VReg, list[int]] = {}
    for node in nodes:
        op = node.op
        if op is None:
            continue
        for src in op.reg_srcs():
            if src in last_def:
                producer = nodes[last_def[src]]
                assert producer.op is not None
                graph.add_edge(producer.index, node.index, "beat",
                               latency.get(producer.op.category, 1))
            readers_since_def.setdefault(src, []).append(node.index)
        if op.dest is not None:
            dest = op.dest
            if dest in last_def:
                producer = nodes[last_def[dest]]
                assert producer.op is not None
                lat = (latency.get(producer.op.category, 1)
                       - latency.get(op.category, 1) + 1)
                graph.add_edge(producer.index, node.index, "beat",
                               max(0, lat))
            for reader in readers_since_def.get(dest, []):
                if reader != node.index:
                    graph.add_edge(reader, node.index, "beat", 0)  # WAR
            readers_since_def[dest] = []
            last_def[dest] = node.index

    # --- memory dependences --------------------------------------------
    mem_nodes = [n for n in nodes if n.op is not None and n.op.is_memory]
    for i, a in enumerate(mem_nodes):
        assert a.op is not None
        for b in mem_nodes[i + 1:]:
            assert b.op is not None
            if a.op.is_load and b.op.is_load:
                continue
            if _memrefs_comparable(nodes, a, b):
                answer = disambiguator.alias(a.op, b.op)
                verdict = answer.value
            else:
                answer = Answer.MAYBE
                verdict = "incomparable"
            if answer is Answer.NO:
                continue
            if a.op.is_store and b.op.is_load:
                lat = store_load_latency(config)
            else:
                lat = 1
            graph.add_edge(a.index, b.index, "beat", lat, verdict)

    # --- control boundaries ----------------------------------------------
    for node in nodes:
        if node.kind == "split":
            assert node.off_trace is not None
            live_off = live_in_map.get(node.off_trace, set())
            for earlier in nodes[:node.index]:
                if earlier.kind == "op":
                    assert earlier.op is not None
                    graph.add_edge(earlier.index, node.index, "inst_ge")
                    # cross-trace timing: a value the off-trace path reads
                    # must have left the pipeline before the branch
                    # transfers control (transfer = end of the branch's
                    # instruction, 2 beats after its issue beat)
                    if earlier.op.dest is not None \
                            and earlier.op.dest in live_off:
                        lat = latency.get(earlier.op.category, 1)
                        # lat == 2 still needs the (zero-latency) beat
                        # edge: issued on the late beat it lands at 2t+3,
                        # one beat after the transfer at 2t+2
                        if lat >= 2:
                            graph.add_edge(earlier.index, node.index,
                                           "beat", lat - 2)
            for later in nodes[node.index + 1:]:
                if later.kind == "op" and _speculatable(
                        later.op, live_off, options):
                    continue
                graph.add_edge(node.index, later.index,
                               "inst_ge" if later.kind == "split"
                               else "inst_gt")
        elif node.kind == "join":
            for earlier in nodes[:node.index]:
                graph.add_edge(earlier.index, node.index, "inst_gt")
            for later in nodes[node.index + 1:]:
                if options.join_motion and _may_move_above_join(later):
                    continue
                graph.add_edge(node.index, later.index, "inst_ge")
        elif node.kind == "call":
            for earlier in nodes[:node.index]:
                graph.add_edge(earlier.index, node.index, "inst_ge")
            for later in nodes[node.index + 1:]:
                graph.add_edge(node.index, later.index, "inst_gt")
        elif node.kind == "term" and node.op is not None \
                and node.op.opcode in (Opcode.RET, Opcode.HALT):
            for earlier in nodes[:node.index]:
                graph.add_edge(earlier.index, node.index, "inst_ge")

    return graph


#: legacy alias for the trace engine's builder
build_trace_graph = build_acyclic_graph


# ---------------------------------------------------------------------------
# modulo mode


def build_modulo_graph(loop: LoopLike, config: MachineConfig,
                       disambiguator: Disambiguator) -> ModuloGraph:
    """Construct the full dependence graph for one matched loop."""
    g = ModuloGraph(loop, config)
    ops = g.ops
    latency = latency_table(config)

    # --- register RAW (the only register edges; MVE handles the rest) ---
    for i, op in enumerate(ops):
        for src in set(op.reg_srcs()):
            d = g.defs_at.get(src)
            if d is None:
                continue
            dist = 0 if d < i else 1
            g.add_edge(d, i, latency.get(ops[d].category, 1), dist, "reg")

    # --- control: the exit test must land before the branch reads it ---
    cmp_index = g.defs_at[loop.pred]
    g.add_edge(cmp_index, g.branch,
               latency.get(ops[cmp_index].category, 1), 0, "ctrl")

    # --- memory ordering --------------------------------------------------
    mem = [i for i, op in enumerate(ops) if op.is_memory]
    store_load_lat = store_load_latency(config)
    for u in mem:
        for v in mem:
            if ops[u].is_load and ops[v].is_load:
                continue
            # ordered pair: u of iteration a, v of iteration a + d.  Within
            # one iteration (d = 0) only program order u-before-v matters;
            # self-pairs and reversed pairs start at distance 1.
            d_start = 0 if u < v else 1
            lat = store_load_lat \
                if ops[u].is_store and ops[v].is_load else 1
            ref_u = g.shiftable_ref(u)
            if ref_u is None or g.shiftable_ref(v) is None:
                # unknown reference: conservatively serialize at the
                # smallest distance (subsumes every larger one)
                g.add_edge(u, v, lat, d_start, "mem", "unknown")
                continue
            for d in range(d_start, MAX_DIST + 1):
                answer = disambiguator.alias(ref_u, g.shifted_ref(v, d))
                if answer is not Answer.NO:
                    g.add_edge(u, v, lat, d, "mem", answer.value)
                    break
    return g


#: legacy alias for the pipeline engine's builder
build_loop_graph = build_modulo_graph
