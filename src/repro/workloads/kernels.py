"""Numeric kernels: the unrollable array loops the paper's speedup claims
are about (LINPACK/BLAS shapes and friends).

Every kernel is described by a :class:`Kernel` record with a builder
(problem size -> fresh IR module), the entry function name, argument maker,
and the names of output arrays to compare for correctness.  The harness
runs each kernel on the reference interpreter and on the simulators and
checks the outputs match, so kernels need no closed-form expected values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..ir import IRBuilder, MemRef, Module, RegClass, VReg, verify_module


@dataclass
class Kernel:
    """One benchmark program family."""

    name: str
    kind: str                       # "numeric" | "systems"
    description: str
    build: Callable[[int], Module]
    func: str = "main"
    #: problem size -> positional args for the entry function
    make_args: Callable[[int], tuple] = lambda n: (n,)
    #: (array name, element size) pairs whose final contents define the
    #: observable result
    outputs: list[tuple[str, int]] = field(default_factory=list)
    #: the entry function returns a checkable value
    returns_value: bool = True


def _mref(base: str, iv: str = "i", scale: int = 8, const: int = 0,
          size: int = 8) -> MemRef:
    return MemRef.make(base, {iv: scale}, const, size)


def _float_init(n: int, phase: float = 0.0) -> list[float]:
    return [round(math.sin(0.7 * k + phase) * 4 + 0.25 * k, 6)
            for k in range(n)]


def _int_init(n: int, seed: int = 0) -> list[int]:
    return [((k * 1103515245 + 12345 + seed) >> 4) % 201 - 100
            for k in range(n)]


def _counted_loop(b: IRBuilder, n_operand, body: Callable[[VReg], None],
                  prefix: str = "") -> None:
    """Emit ``for (i = 0; i < n; i++) body(i)`` ending in block ``exit``."""
    i = VReg(f"{prefix}i", RegClass.INT)
    b.mov(0, dest=i)
    b.jmp(f"{prefix}head")
    b.block(f"{prefix}head")
    p = b.cmplt(i, n_operand)
    b.br(p, f"{prefix}body", f"{prefix}exit")
    b.block(f"{prefix}body")
    body(i)
    b.add(i, 1, dest=i)
    b.jmp(f"{prefix}head")
    b.block(f"{prefix}exit")


# ---------------------------------------------------------------------------
# BLAS-1 shapes


def build_daxpy(n: int) -> Module:
    """y[i] = a*x[i] + y[i] — the canonical independent-iteration loop."""
    m = Module("daxpy")
    m.add_array("X", n, 8, init=_float_init(n))
    m.add_array("Y", n, 8, init=_float_init(n, 1.0))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT), ("a", RegClass.FLT)])
    b.block("entry")
    x = b.addr("X")
    y = b.addr("Y")

    def body(i: VReg) -> None:
        off = b.shl(i, 3)
        xa = b.add(x, off)
        ya = b.add(y, off)
        xv = b.fload(xa, 0, memref=_mref("X"))
        yv = b.fload(ya, 0, memref=_mref("Y"))
        b.fstore(b.fadd(yv, b.fmul(b.param("a"), xv)), ya, 0,
                 memref=_mref("Y"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


def build_dot(n: int) -> Module:
    """s = sum(x[i] * y[i]) — a reduction (serial FADD chain)."""
    m = Module("dot")
    m.add_array("X", n, 8, init=_float_init(n))
    m.add_array("Y", n, 8, init=_float_init(n, 2.0))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.FLT)
    s = VReg("s", RegClass.FLT)
    b.block("entry")
    x = b.addr("X")
    y = b.addr("Y")
    b.fmov(0.0, dest=s)

    def body(i: VReg) -> None:
        off = b.shl(i, 3)
        xv = b.fload(b.add(x, off), 0, memref=_mref("X"))
        yv = b.fload(b.add(y, off), 0, memref=_mref("Y"))
        b.fadd(s, b.fmul(xv, yv), dest=s)

    _counted_loop(b, b.param("n"), body)
    b.ret(s)
    verify_module(m)
    return m


def build_vadd(n: int) -> Module:
    """z[i] = x[i] + y[i]."""
    m = Module("vadd")
    m.add_array("X", n, 8, init=_float_init(n))
    m.add_array("Y", n, 8, init=_float_init(n, 1.5))
    m.add_array("Z", n, 8)
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    x, y, z = b.addr("X"), b.addr("Y"), b.addr("Z")

    def body(i: VReg) -> None:
        off = b.shl(i, 3)
        xv = b.fload(b.add(x, off), 0, memref=_mref("X"))
        yv = b.fload(b.add(y, off), 0, memref=_mref("Y"))
        b.fstore(b.fadd(xv, yv), b.add(z, off), 0, memref=_mref("Z"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


def build_scale(n: int) -> Module:
    """x[i] = a * x[i]."""
    m = Module("scale")
    m.add_array("X", n, 8, init=_float_init(n))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT), ("a", RegClass.FLT)])
    b.block("entry")
    x = b.addr("X")

    def body(i: VReg) -> None:
        off = b.shl(i, 3)
        xa = b.add(x, off)
        xv = b.fload(xa, 0, memref=_mref("X"))
        b.fstore(b.fmul(b.param("a"), xv), xa, 0, memref=_mref("X"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


# ---------------------------------------------------------------------------
# Signal / stencil shapes


def build_fir4(n: int) -> Module:
    """y[i] = sum_{t<4} c[t] * x[i+t] — 4-tap FIR filter."""
    m = Module("fir4")
    m.add_array("X", n + 4, 8, init=_float_init(n + 4))
    m.add_array("Y", n, 8)
    m.add_array("C", 4, 8, init=[0.25, 0.5, -0.5, 1.0])
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    x, y = b.addr("X"), b.addr("Y")
    coeffs = [b.fload(b.addr("C"), 8 * t,
                      memref=MemRef.make("C", {}, 8 * t, size=8))
              for t in range(4)]

    def body(i: VReg) -> None:
        off = b.shl(i, 3)
        xa = b.add(x, off)
        acc = None
        for t in range(4):
            xv = b.fload(xa, 8 * t, memref=_mref("X", const=8 * t))
            term = b.fmul(coeffs[t], xv)
            acc = term if acc is None else b.fadd(acc, term)
        b.fstore(acc, b.add(y, off), 0, memref=_mref("Y"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


def build_stencil3(n: int) -> Module:
    """y[i] = (x[i-1] + x[i] + x[i+1]) / 3 over the interior."""
    m = Module("stencil3")
    m.add_array("X", n + 2, 8, init=_float_init(n + 2))
    m.add_array("Y", n, 8)
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    x, y = b.addr("X"), b.addr("Y")
    third = b.fmov(1.0 / 3.0)

    def body(i: VReg) -> None:
        off = b.shl(i, 3)
        xa = b.add(x, off)
        left = b.fload(xa, 0, memref=_mref("X", const=0))
        mid = b.fload(xa, 8, memref=_mref("X", const=8))
        right = b.fload(xa, 16, memref=_mref("X", const=16))
        total = b.fadd(b.fadd(left, mid), right)
        b.fstore(b.fmul(total, third), b.add(y, off), 0, memref=_mref("Y"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


# ---------------------------------------------------------------------------
# Matrix


def build_matmul(n: int) -> Module:
    """C = A @ B for n x n float matrices (three nested loops)."""
    m = Module("matmul")
    m.add_array("A", n * n, 8, init=_float_init(n * n))
    m.add_array("B", n * n, 8, init=_float_init(n * n, 3.0))
    m.add_array("C", n * n, 8)
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    a, bb, c = b.addr("A"), b.addr("B"), b.addr("C")
    i = VReg("i", RegClass.INT)
    j = VReg("j", RegClass.INT)
    k = VReg("k", RegClass.INT)
    acc = VReg("acc", RegClass.FLT)
    row = VReg("row", RegClass.INT)

    b.mov(0, dest=i)
    b.jmp("ihead")
    b.block("ihead")
    b.br(b.cmplt(i, b.param("n")), "ibody", "iexit")
    b.block("ibody")
    b.mul(i, b.param("n"), dest=row)
    b.mov(0, dest=j)
    b.jmp("jhead")
    b.block("jhead")
    b.br(b.cmplt(j, b.param("n")), "jbody", "jexit")
    b.block("jbody")
    b.fmov(0.0, dest=acc)
    b.mov(0, dest=k)
    b.jmp("khead")
    b.block("khead")
    b.br(b.cmplt(k, b.param("n")), "kbody", "kexit")
    b.block("kbody")
    av = b.fload(b.add(a, b.shl(b.add(row, k), 3)), 0,
                 memref=MemRef.make("A", {"k": 8, "row": 8}, size=8))
    bv = b.fload(b.add(bb, b.shl(b.add(b.mul(k, b.param("n")), j), 3)), 0)
    b.fadd(acc, b.fmul(av, bv), dest=acc)
    b.add(k, 1, dest=k)
    b.jmp("khead")
    b.block("kexit")
    b.fstore(acc, b.add(c, b.shl(b.add(row, j), 3)), 0)
    b.add(j, 1, dest=j)
    b.jmp("jhead")
    b.block("jexit")
    b.add(i, 1, dest=i)
    b.jmp("ihead")
    b.block("iexit")
    b.ret()
    verify_module(m)
    return m


# ---------------------------------------------------------------------------
# Integer kernels


def build_int_sum(n: int) -> Module:
    """s = sum(v[i]) over an int array (1-beat chain: integer reduction)."""
    m = Module("int_sum")
    m.add_array("V", n, 4, init=_int_init(n))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
    s = VReg("s", RegClass.INT)
    b.block("entry")
    v = b.addr("V")
    b.mov(0, dest=s)

    def body(i: VReg) -> None:
        x = b.load(b.add(v, b.shl(i, 2)), 0,
                   memref=_mref("V", scale=4, size=4))
        b.add(s, x, dest=s)

    _counted_loop(b, b.param("n"), body)
    b.ret(s)
    verify_module(m)
    return m


def build_saxpy_int(n: int) -> Module:
    """y[i] = a*x[i] + y[i] over int arrays (integer multiply pipeline)."""
    m = Module("saxpy_int")
    m.add_array("XI", n, 4, init=_int_init(n))
    m.add_array("YI", n, 4, init=_int_init(n, 7))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT), ("a", RegClass.INT)])
    b.block("entry")
    x, y = b.addr("XI"), b.addr("YI")

    def body(i: VReg) -> None:
        off = b.shl(i, 2)
        xa, ya = b.add(x, off), b.add(y, off)
        xv = b.load(xa, 0, memref=_mref("XI", scale=4, size=4))
        yv = b.load(ya, 0, memref=_mref("YI", scale=4, size=4))
        b.store(b.add(yv, b.mul(b.param("a"), xv)), ya, 0,
                memref=_mref("YI", scale=4, size=4))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


def build_copy(n: int) -> Module:
    """dst[i] = src[i] — pure memory bandwidth."""
    m = Module("copy")
    m.add_array("SRC", n, 8, init=_float_init(n))
    m.add_array("DST", n, 8)
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    src, dst = b.addr("SRC"), b.addr("DST")

    def body(i: VReg) -> None:
        off = b.shl(i, 3)
        b.fstore(b.fload(b.add(src, off), 0, memref=_mref("SRC")),
                 b.add(dst, off), 0, memref=_mref("DST"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


# ---------------------------------------------------------------------------
# Registry

NUMERIC_KERNELS: dict[str, Kernel] = {
    "daxpy": Kernel("daxpy", "numeric",
                    "y[i] += a*x[i] (LINPACK inner loop)", build_daxpy,
                    make_args=lambda n: (n, 2.5), outputs=[("Y", 8)],
                    returns_value=False),
    "dot": Kernel("dot", "numeric", "inner product (reduction)", build_dot,
                  outputs=[]),
    "vadd": Kernel("vadd", "numeric", "z[i] = x[i]+y[i]", build_vadd,
                   outputs=[("Z", 8)], returns_value=False),
    "scale": Kernel("scale", "numeric", "x[i] *= a", build_scale,
                    make_args=lambda n: (n, 1.01), outputs=[("X", 8)],
                    returns_value=False),
    "fir4": Kernel("fir4", "numeric", "4-tap FIR filter", build_fir4,
                   outputs=[("Y", 8)], returns_value=False),
    "stencil3": Kernel("stencil3", "numeric", "3-point average stencil",
                       build_stencil3, outputs=[("Y", 8)],
                       returns_value=False),
    "matmul": Kernel("matmul", "numeric", "n x n matrix multiply",
                     build_matmul, outputs=[("C", 8)], returns_value=False),
    "int_sum": Kernel("int_sum", "numeric", "integer array reduction",
                      build_int_sum, outputs=[]),
    "saxpy_int": Kernel("saxpy_int", "numeric", "integer saxpy",
                        build_saxpy_int, make_args=lambda n: (n, 3),
                        outputs=[("YI", 4)], returns_value=False),
    "copy": Kernel("copy", "numeric", "block copy (memory bandwidth)",
                   build_copy, outputs=[("DST", 8)], returns_value=False),
}
