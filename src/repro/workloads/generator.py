"""Random structured-program generator: the compiler's test oracle.

Generates terminating IR programs with branchy control flow, counted
loops, multi-definition registers, and in-bounds array traffic, so that
differential testing (reference interpreter vs. scalar vs. scoreboard vs.
trace-scheduled VLIW) exercises trace selection, speculation, join
compensation, and the disambiguator on shapes no hand-written kernel
would cover.

Programs avoid two sources of legitimate divergence: FDIV/CVTFI (trap
timing differs by design between exception modes) and out-of-bounds
accesses (dismissable-load "funny numbers" are tested separately).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ir import (IRBuilder, MemRef, Module, Opcode, RegClass, VReg,
                  verify_module)

_INT_BINOPS = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
               Opcode.XOR, Opcode.SHL, Opcode.SHR]
_FLT_BINOPS = [Opcode.FADD, Opcode.FSUB, Opcode.FMUL]
_INT_CMPS = [Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
             Opcode.CMPGT, Opcode.CMPGE]


@dataclass
class GeneratorConfig:
    """Size/shape knobs for random programs."""

    n_int_regs: int = 4
    n_flt_regs: int = 3
    n_arrays: int = 2
    array_elems: int = 16        # power of two: masked indices stay in range
    max_depth: int = 2
    max_stmts: int = 6
    max_loop_trips: int = 6
    p_if: float = 0.25
    p_loop: float = 0.2
    p_memory: float = 0.3


class ProgramGenerator:
    """Builds one random module per seed."""

    def __init__(self, seed: int, config: GeneratorConfig | None = None):
        self.rng = random.Random(seed)
        self.config = config or GeneratorConfig()
        self._label_counter = 0

    # ------------------------------------------------------------------
    def generate(self) -> Module:
        cfg = self.config
        module = Module(f"random_{self.rng.getrandbits(32):08x}")
        for a in range(cfg.n_arrays):
            module.add_array(f"IA{a}", cfg.array_elems, 4,
                             init=[self.rng.randint(-100, 100)
                                   for _ in range(cfg.array_elems)])
            module.add_array(f"FA{a}", cfg.array_elems, 8,
                             init=[round(self.rng.uniform(-8, 8), 3)
                                   for _ in range(cfg.array_elems)])
        builder = IRBuilder(module)
        builder.function("main", [("p0", RegClass.INT),
                                  ("p1", RegClass.INT)],
                         ret_class=RegClass.FLT)
        builder.block("entry")

        self.ints = [VReg(f"x{i}", RegClass.INT)
                     for i in range(cfg.n_int_regs)]
        self.flts = [VReg(f"f{i}", RegClass.FLT)
                     for i in range(cfg.n_flt_regs)]
        builder.mov(builder.param("p0"), dest=self.ints[0])
        builder.mov(builder.param("p1"), dest=self.ints[1])
        for reg in self.ints[2:]:
            builder.mov(self.rng.randint(-50, 50), dest=reg)
        for i, reg in enumerate(self.flts):
            builder.fmov(float(i + 1), dest=reg)

        self._statements(builder, self.config.max_depth)

        result = builder.fadd(self.flts[0],
                              builder.cvtif(self.ints[0]))
        for reg in self.flts[1:]:
            result = builder.fadd(result, reg)
        builder.ret(result)
        verify_module(module)
        return module

    # ------------------------------------------------------------------
    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def _statements(self, b: IRBuilder, depth: int) -> None:
        for _ in range(self.rng.randint(1, self.config.max_stmts)):
            self._statement(b, depth)

    def _statement(self, b: IRBuilder, depth: int) -> None:
        roll = self.rng.random()
        if depth > 0 and roll < self.config.p_if:
            self._if_stmt(b, depth)
        elif depth > 0 and roll < self.config.p_if + self.config.p_loop:
            self._loop_stmt(b, depth)
        elif roll < (self.config.p_if + self.config.p_loop
                     + self.config.p_memory):
            self._memory_stmt(b)
        else:
            self._arith_stmt(b)

    # -- leaves ------------------------------------------------------------
    def _int_operand(self, b):
        if self.rng.random() < 0.3:
            return self.rng.randint(-30, 30)
        return self.rng.choice(self.ints)

    def _arith_stmt(self, b: IRBuilder) -> None:
        if self.rng.random() < 0.5:
            opcode = self.rng.choice(_INT_BINOPS)
            srcs = [self._int_operand(b), self._int_operand(b)]
            if opcode in (Opcode.SHL, Opcode.SHR):
                srcs[1] = self.rng.randint(0, 4)
            dest = self.rng.choice(self.ints)
            b.emit(opcode, srcs, dest=dest)
        else:
            opcode = self.rng.choice(_FLT_BINOPS)
            dest = self.rng.choice(self.flts)
            b.emit(opcode, [self.rng.choice(self.flts),
                            self.rng.choice(self.flts)], dest=dest)

    def _masked_index(self, b: IRBuilder, elem_shift: int):
        index = b.and_(self.rng.choice(self.ints),
                       self.config.array_elems - 1)
        return b.shl(index, elem_shift), index

    def _memory_stmt(self, b: IRBuilder) -> None:
        array = self.rng.randrange(self.config.n_arrays)
        if self.rng.random() < 0.5:     # integer array
            base = b.addr(f"IA{array}")
            offset, _ = self._masked_index(b, 2)
            addr = b.add(base, offset)
            if self.rng.random() < 0.5:
                value = b.load(addr, 0)
                b.mov(value, dest=self.rng.choice(self.ints))
            else:
                b.store(self.rng.choice(self.ints), addr, 0)
        else:                           # float array
            base = b.addr(f"FA{array}")
            offset, _ = self._masked_index(b, 3)
            addr = b.add(base, offset)
            if self.rng.random() < 0.5:
                value = b.fload(addr, 0)
                b.fmov(value, dest=self.rng.choice(self.flts))
            else:
                b.fstore(self.rng.choice(self.flts), addr, 0)

    # -- control -------------------------------------------------------------
    def _if_stmt(self, b: IRBuilder, depth: int) -> None:
        pred = b.emit(self.rng.choice(_INT_CMPS),
                      [self._int_operand(b), self._int_operand(b)]).dest
        then_name = self._fresh_label("then")
        else_name = self._fresh_label("else")
        join_name = self._fresh_label("join")
        b.br(pred, then_name, else_name)
        b.block(then_name)
        self._statements(b, depth - 1)
        b.jmp(join_name)
        b.block(else_name)
        if self.rng.random() < 0.6:
            self._statements(b, depth - 1)
        b.jmp(join_name)
        b.block(join_name)

    def _loop_stmt(self, b: IRBuilder, depth: int) -> None:
        trips = self.rng.randint(1, self.config.max_loop_trips)
        iv = VReg(self._fresh_label("iv."), RegClass.INT)
        head = self._fresh_label("head")
        body = self._fresh_label("body")
        done = self._fresh_label("done")
        b.mov(0, dest=iv)
        b.jmp(head)
        b.block(head)
        pred = b.cmplt(iv, trips)
        b.br(pred, body, done)
        b.block(body)
        self._statements(b, depth - 1)
        b.add(iv, 1, dest=iv)
        b.jmp(head)
        b.block(done)


def generate_program(seed: int,
                     config: GeneratorConfig | None = None) -> Module:
    """One random module for the given seed (deterministic)."""
    return ProgramGenerator(seed, config).generate()
