"""Systems-code workloads: the branchy, pointer-heavy shapes of UNIX code.

Paper section 8.4: systems code "tends to have even smaller basic blocks
than numerical code" and "proportionately many more procedure calls" — and
the TRACE still sped it up, which surprised the authors.  These kernels
reproduce those shapes: element-wise conditionals, searches, pointer
chases, sorting passes, state machines, and call-heavy code.
"""

from __future__ import annotations

from ..ir import IRBuilder, MemRef, Module, RegClass, VReg, verify_module
from .kernels import Kernel, _counted_loop, _int_init, _mref


def build_count_matches(n: int) -> Module:
    """count of v[i] > 0 — one data-dependent branch per element."""
    m = Module("count_matches")
    m.add_array("V", n, 4, init=_int_init(n))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
    count = VReg("count", RegClass.INT)
    i = VReg("i", RegClass.INT)
    b.block("entry")
    v = b.addr("V")
    b.mov(0, dest=count)
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    b.br(b.cmplt(i, b.param("n")), "body", "exit")
    b.block("body")
    x = b.load(b.add(v, b.shl(i, 2)), 0, memref=_mref("V", scale=4, size=4))
    b.br(b.cmpgt(x, 0), "hit", "next")
    b.block("hit")
    b.add(count, 1, dest=count)
    b.jmp("next")
    b.block("next")
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret(count)
    verify_module(m)
    return m


def build_clamp(n: int) -> Module:
    """v[i] = clamp(v[i], -50, 50) via an if/else chain per element."""
    m = Module("clamp")
    m.add_array("V", n, 4, init=_int_init(n, 3))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    i = VReg("i", RegClass.INT)
    b.block("entry")
    v = b.addr("V")
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    b.br(b.cmplt(i, b.param("n")), "body", "exit")
    b.block("body")
    addr = b.add(v, b.shl(i, 2), dest=VReg("addr", RegClass.INT))
    x = b.load(addr, 0, memref=_mref("V", scale=4, size=4))
    b.br(b.cmpgt(x, 50), "high", "check_low")
    b.block("high")
    b.store(50, addr, 0, memref=_mref("V", scale=4, size=4))
    b.jmp("next")
    b.block("check_low")
    b.br(b.cmplt(x, -50), "low", "next")
    b.block("low")
    b.store(-50, addr, 0, memref=_mref("V", scale=4, size=4))
    b.jmp("next")
    b.block("next")
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret()
    verify_module(m)
    return m


def build_pointer_chase(n: int) -> Module:
    """Walk a linked list laid out in an array: node = next[node].

    The serial pointer chase is the worst case for any ILP machine —
    the paper's honesty check.
    """
    m = Module("pointer_chase")
    # next[i] = (i + 7) % n builds one full cycle when gcd(7, n) == 1
    links = [(k + 7) % n for k in range(n)]
    m.add_array("NEXT", n, 4, init=links)
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
    node = VReg("node", RegClass.INT)
    b.block("entry")
    base = b.addr("NEXT")
    b.mov(0, dest=node)

    def body(i: VReg) -> None:
        loaded = b.load(b.add(base, b.shl(node, 2)), 0)
        b.mov(loaded, dest=node)

    _counted_loop(b, b.param("n"), body)
    b.ret(node)
    verify_module(m)
    return m


def build_insertion_pass(n: int) -> Module:
    """One bubble pass: adjacent compare-and-swap across the array."""
    m = Module("insertion_pass")
    m.add_array("V", n + 1, 4, init=_int_init(n + 1, 11))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
    swaps = VReg("swaps", RegClass.INT)
    i = VReg("i", RegClass.INT)
    b.block("entry")
    v = b.addr("V")
    b.mov(0, dest=swaps)
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    b.br(b.cmplt(i, b.param("n")), "body", "exit")
    b.block("body")
    addr = b.add(v, b.shl(i, 2), dest=VReg("addr", RegClass.INT))
    a = b.load(addr, 0, memref=_mref("V", scale=4, size=4))
    c = b.load(addr, 4, memref=_mref("V", scale=4, const=4, size=4))
    b.br(b.cmpgt(a, c), "swap", "next")
    b.block("swap")
    b.store(c, addr, 0, memref=_mref("V", scale=4, size=4))
    b.store(a, addr, 4, memref=_mref("V", scale=4, const=4, size=4))
    b.add(swaps, 1, dest=swaps)
    b.jmp("next")
    b.block("next")
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    b.ret(swaps)
    verify_module(m)
    return m


def build_state_machine(n: int) -> Module:
    """A 3-state token scanner over byte-ish values (grep-like shape)."""
    m = Module("state_machine")
    m.add_array("V", n, 4, init=[abs(x) % 4 for x in _int_init(n, 5)])
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
    state = VReg("state", RegClass.INT)
    tokens = VReg("tokens", RegClass.INT)
    i = VReg("i", RegClass.INT)
    b.block("entry")
    v = b.addr("V")
    b.mov(0, dest=state)
    b.mov(0, dest=tokens)
    b.mov(0, dest=i)
    b.jmp("head")
    b.block("head")
    b.br(b.cmplt(i, b.param("n")), "body", "exit")
    b.block("body")
    x = b.load(b.add(v, b.shl(i, 2)), 0, memref=_mref("V", scale=4, size=4))
    b.br(b.cmpeq(x, 0), "sep", "nonsep")
    b.block("sep")
    # separator: if we were in a token, count it
    b.br(b.cmpne(state, 0), "endtok", "next")
    b.block("endtok")
    b.add(tokens, 1, dest=tokens)
    b.mov(0, dest=state)
    b.jmp("next")
    b.block("nonsep")
    b.mov(1, dest=state)
    b.jmp("next")
    b.block("next")
    b.add(i, 1, dest=i)
    b.jmp("head")
    b.block("exit")
    # trailing token
    b.br(b.cmpne(state, 0), "trail", "done")
    b.block("trail")
    b.add(tokens, 1, dest=tokens)
    b.jmp("done")
    b.block("done")
    b.ret(tokens)
    verify_module(m)
    return m


def build_call_heavy(n: int) -> Module:
    """sum of f(v[i]) where f is a small leaf routine — inliner fodder."""
    m = Module("call_heavy")
    m.add_array("V", n, 4, init=_int_init(n, 1))
    b = IRBuilder(m)
    b.function("weight", [("x", RegClass.INT)], ret_class=RegClass.INT)
    b.block("entry")
    p = b.cmplt(b.param("x"), 0)
    b.ret(b.select(p, b.neg(b.param("x")), b.shl(b.param("x"), 1)))
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
    total = VReg("total", RegClass.INT)
    b.block("entry")
    v = b.addr("V")
    b.mov(0, dest=total)

    def body(i: VReg) -> None:
        x = b.load(b.add(v, b.shl(i, 2)), 0,
                   memref=_mref("V", scale=4, size=4))
        w = b.call("weight", [x])
        b.add(total, w, dest=total)

    _counted_loop(b, b.param("n"), body)
    b.ret(total)
    verify_module(m)
    return m


def build_binary_search(n: int) -> Module:
    """Repeated binary searches over a sorted array (branch-dominated)."""
    m = Module("binary_search")
    m.add_array("V", n, 4, init=[3 * k for k in range(n)])
    b = IRBuilder(m)
    b.function("find", [("n", RegClass.INT), ("key", RegClass.INT)],
               ret_class=RegClass.INT)
    lo = VReg("lo", RegClass.INT)
    hi = VReg("hi", RegClass.INT)
    mid = VReg("mid", RegClass.INT)
    b.block("entry")
    v = b.addr("V")
    b.mov(0, dest=lo)
    b.mov(b.param("n"), dest=hi)
    b.jmp("head")
    b.block("head")
    b.br(b.cmplt(lo, hi), "body", "missing")
    b.block("body")
    b.shr(b.add(lo, hi), 1, dest=mid)
    x = b.load(b.add(v, b.shl(mid, 2)), 0)
    b.br(b.cmpeq(x, b.param("key")), "found", "narrow")
    b.block("narrow")
    b.br(b.cmplt(x, b.param("key")), "goright", "goleft")
    b.block("goright")
    b.add(mid, 1, dest=lo)
    b.jmp("head")
    b.block("goleft")
    b.mov(mid, dest=hi)
    b.jmp("head")
    b.block("found")
    b.ret(mid)
    b.block("missing")
    b.ret(-1)

    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.INT)
    hits = VReg("hits", RegClass.INT)
    b.block("entry")
    b.mov(0, dest=hits)

    def body(i: VReg) -> None:
        found = b.call("find", [b.param("n"), b.mul(i, 3)])
        p = b.cmpge(found, 0)
        b.add(hits, b.select(p, 1, 0), dest=hits)

    _counted_loop(b, b.param("n"), body)
    b.ret(hits)
    verify_module(m)
    return m


def build_horner(n: int) -> Module:
    """Horner polynomial evaluation — a pure serial FP chain."""
    m = Module("horner")
    m.add_array("C", n, 8, init=[0.5 / (k + 1) for k in range(n)])
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT), ("x", RegClass.FLT)],
               ret_class=RegClass.FLT)
    acc = VReg("acc", RegClass.FLT)
    b.block("entry")
    c = b.addr("C")
    b.fmov(0.0, dest=acc)

    def body(i: VReg) -> None:
        coeff = b.fload(b.add(c, b.shl(i, 3)), 0,
                        memref=_mref("C", scale=8, size=8))
        b.fadd(b.fmul(acc, b.param("x")), coeff, dest=acc)

    _counted_loop(b, b.param("n"), body)
    b.ret(acc)
    verify_module(m)
    return m


SYSTEMS_KERNELS: dict[str, Kernel] = {
    "count_matches": Kernel("count_matches", "systems",
                            "conditional count (branch per element)",
                            build_count_matches, outputs=[]),
    "clamp": Kernel("clamp", "systems", "clamp with if/else chain",
                    build_clamp, outputs=[("V", 4)], returns_value=False),
    "pointer_chase": Kernel("pointer_chase", "systems",
                            "serial linked-list walk", build_pointer_chase,
                            outputs=[]),
    "insertion_pass": Kernel("insertion_pass", "systems",
                             "bubble pass with swaps", build_insertion_pass,
                             outputs=[("V", 4)]),
    "state_machine": Kernel("state_machine", "systems",
                            "token scanner (grep-like)", build_state_machine,
                            outputs=[]),
    "call_heavy": Kernel("call_heavy", "systems",
                         "leaf call per element", build_call_heavy,
                         outputs=[]),
    "binary_search": Kernel("binary_search", "systems",
                            "repeated binary searches", build_binary_search,
                            outputs=[]),
    "horner": Kernel("horner", "systems", "Horner polynomial (serial FP)",
                     build_horner, make_args=lambda n: (n, 0.9),
                     outputs=[]),
}
