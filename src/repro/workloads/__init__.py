"""Workloads: numeric kernels, Livermore shapes, systems code, and the
random-program generator used for differential testing."""

from .generator import GeneratorConfig, ProgramGenerator, generate_program
from .kernels import Kernel, NUMERIC_KERNELS
from .livermore import LIVERMORE_KERNELS
from .systems import SYSTEMS_KERNELS

#: every named workload, by name
ALL_KERNELS: dict[str, Kernel] = {
    **NUMERIC_KERNELS, **LIVERMORE_KERNELS, **SYSTEMS_KERNELS,
}


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by name (raises KeyError with the valid names)."""
    try:
        return ALL_KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; choose from "
                       f"{sorted(ALL_KERNELS)}") from None


__all__ = [
    "GeneratorConfig", "ProgramGenerator", "generate_program",
    "Kernel", "NUMERIC_KERNELS", "LIVERMORE_KERNELS", "SYSTEMS_KERNELS",
    "ALL_KERNELS", "get_kernel",
]
