"""Livermore-loop shapes: the scientific kernels 1980s supercomputers were
judged by, and the kind of FORTRAN inner loop the TRACE was built for.

A representative subset, chosen for distinct scheduling behaviour:

* LL1  (hydro fragment)        — wide independent expression per iteration
* LL3  (inner product)         — serial reduction
* LL5  (tridiagonal elim.)     — loop-carried dependence (hard case)
* LL7  (equation of state)     — very wide expression, high ILP
* LL12 (first difference)      — 2-load 1-store streaming
"""

from __future__ import annotations

import math

from ..ir import IRBuilder, MemRef, Module, RegClass, VReg, verify_module
from .kernels import Kernel, _counted_loop, _float_init, _mref


def build_ll1_hydro(n: int) -> Module:
    """x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])."""
    m = Module("ll1")
    m.add_array("Xa", n, 8)
    m.add_array("Ya", n, 8, init=_float_init(n))
    m.add_array("Za", n + 12, 8, init=_float_init(n + 12, 0.5))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    x, y, z = b.addr("Xa"), b.addr("Ya"), b.addr("Za")
    q = b.fmov(0.5)
    r = b.fmov(1.25)
    t = b.fmov(0.75)

    def body(k: VReg) -> None:
        off = b.shl(k, 3)
        za = b.add(z, off)
        z10 = b.fload(za, 80, memref=_mref("Za", "i", const=80))
        z11 = b.fload(za, 88, memref=_mref("Za", "i", const=88))
        yk = b.fload(b.add(y, off), 0, memref=_mref("Ya", "i"))
        inner = b.fadd(b.fmul(r, z10), b.fmul(t, z11))
        b.fstore(b.fadd(q, b.fmul(yk, inner)), b.add(x, off), 0,
                 memref=_mref("Xa", "i"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


def build_ll3_inner(n: int) -> Module:
    """q = sum(z[k] * x[k])."""
    m = Module("ll3")
    m.add_array("Xa", n, 8, init=_float_init(n))
    m.add_array("Za", n, 8, init=_float_init(n, 1.0))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)], ret_class=RegClass.FLT)
    q = VReg("q", RegClass.FLT)
    b.block("entry")
    x, z = b.addr("Xa"), b.addr("Za")
    b.fmov(0.0, dest=q)

    def body(k: VReg) -> None:
        off = b.shl(k, 3)
        zv = b.fload(b.add(z, off), 0, memref=_mref("Za", "i"))
        xv = b.fload(b.add(x, off), 0, memref=_mref("Xa", "i"))
        b.fadd(q, b.fmul(zv, xv), dest=q)

    _counted_loop(b, b.param("n"), body)
    b.ret(q)
    verify_module(m)
    return m


def build_ll5_tridiag(n: int) -> Module:
    """x[i] = z[i] * (y[i] - x[i-1]) — loop-carried dependence."""
    m = Module("ll5")
    m.add_array("Xa", n + 1, 8, init=[0.1] + [0.0] * n)
    m.add_array("Ya", n + 1, 8, init=_float_init(n + 1))
    m.add_array("Za", n + 1, 8, init=_float_init(n + 1, 2.0))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    x, y, z = b.addr("Xa"), b.addr("Ya"), b.addr("Za")
    # carry x[i-1] in a register to expose the recurrence to the scheduler
    carry = VReg("carry", RegClass.FLT)
    first = b.fload(x, 0, memref=MemRef.make("Xa", {}, 0, size=8))
    b.fmov(first, dest=carry)

    def body(i: VReg) -> None:
        off = b.shl(i, 3)
        yv = b.fload(b.add(y, off), 8, memref=_mref("Ya", "i", const=8))
        zv = b.fload(b.add(z, off), 8, memref=_mref("Za", "i", const=8))
        value = b.fmul(zv, b.fsub(yv, carry))
        b.fstore(value, b.add(x, off), 8, memref=_mref("Xa", "i", const=8))
        b.fmov(value, dest=carry)

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


def build_ll7_state(n: int) -> Module:
    """x[k] = u[k] + r*(z[k] + r*y[k]) + t*(u[k+3] + r*(u[k+2] + r*u[k+1]))
    — the equation-of-state fragment, lots of independent multiplies."""
    m = Module("ll7")
    m.add_array("Xa", n, 8)
    m.add_array("Ya", n, 8, init=_float_init(n))
    m.add_array("Za", n, 8, init=_float_init(n, 1.3))
    m.add_array("Ua", n + 4, 8, init=_float_init(n + 4, 2.6))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    x, y, z, u = (b.addr(s) for s in ("Xa", "Ya", "Za", "Ua"))
    r = b.fmov(0.625)
    t = b.fmov(0.375)

    def body(k: VReg) -> None:
        off = b.shl(k, 3)
        ua = b.add(u, off)
        u0 = b.fload(ua, 0, memref=_mref("Ua", "i"))
        u1 = b.fload(ua, 8, memref=_mref("Ua", "i", const=8))
        u2 = b.fload(ua, 16, memref=_mref("Ua", "i", const=16))
        u3 = b.fload(ua, 24, memref=_mref("Ua", "i", const=24))
        yv = b.fload(b.add(y, off), 0, memref=_mref("Ya", "i"))
        zv = b.fload(b.add(z, off), 0, memref=_mref("Za", "i"))
        left = b.fadd(u0, b.fmul(r, b.fadd(zv, b.fmul(r, yv))))
        right = b.fmul(t, b.fadd(u3, b.fmul(r, b.fadd(u2, b.fmul(r, u1)))))
        b.fstore(b.fadd(left, right), b.add(x, off), 0,
                 memref=_mref("Xa", "i"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


def build_ll12_diff(n: int) -> Module:
    """x[k] = y[k+1] - y[k]."""
    m = Module("ll12")
    m.add_array("Xa", n, 8)
    m.add_array("Ya", n + 1, 8, init=_float_init(n + 1))
    b = IRBuilder(m)
    b.function("main", [("n", RegClass.INT)])
    b.block("entry")
    x, y = b.addr("Xa"), b.addr("Ya")

    def body(k: VReg) -> None:
        off = b.shl(k, 3)
        ya = b.add(y, off)
        y1 = b.fload(ya, 8, memref=_mref("Ya", "i", const=8))
        y0 = b.fload(ya, 0, memref=_mref("Ya", "i"))
        b.fstore(b.fsub(y1, y0), b.add(x, off), 0, memref=_mref("Xa", "i"))

    _counted_loop(b, b.param("n"), body)
    b.ret()
    verify_module(m)
    return m


LIVERMORE_KERNELS: dict[str, Kernel] = {
    "ll1_hydro": Kernel("ll1_hydro", "numeric",
                        "LL1 hydro fragment", build_ll1_hydro,
                        outputs=[("Xa", 8)], returns_value=False),
    "ll3_inner": Kernel("ll3_inner", "numeric",
                        "LL3 inner product", build_ll3_inner, outputs=[]),
    "ll5_tridiag": Kernel("ll5_tridiag", "numeric",
                          "LL5 tridiagonal elimination (loop-carried)",
                          build_ll5_tridiag, outputs=[("Xa", 8)],
                          returns_value=False),
    "ll7_state": Kernel("ll7_state", "numeric",
                        "LL7 equation of state (wide ILP)", build_ll7_state,
                        outputs=[("Xa", 8)], returns_value=False),
    "ll12_diff": Kernel("ll12_diff", "numeric",
                        "LL12 first difference", build_ll12_diff,
                        outputs=[("Xa", 8)], returns_value=False),
}
