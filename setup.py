"""Legacy setup shim so `pip install -e .` works without the wheel package
(this environment is offline; pip's PEP 517 editable path needs wheel)."""

from setuptools import setup

setup()
